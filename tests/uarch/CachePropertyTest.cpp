//===- tests/uarch/CachePropertyTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized invariants of the set-associative cache model across
/// the geometries the paper's machines use (Table 1's 32KB/4-way I- and
/// D-caches, the 8KB/2-way replicated option, and the 512KB L2):
/// accounting identities, working-set containment, line granularity, and
/// probe/invalidate semantics under random access streams.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "uarch/Cache.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

struct Geometry {
  const char *Name;
  CacheParams Params;
};

const Geometry Geometries[] = {
    {"L1_32K_4way",
     {/*LineBytes=*/64, /*Assoc=*/4, /*SizeBytes=*/32 * 1024,
      /*HitLatency=*/2, /*RandomRepl=*/false}},
    {"Repl_8K_2way",
     {/*LineBytes=*/64, /*Assoc=*/2, /*SizeBytes=*/8 * 1024,
      /*HitLatency=*/2, /*RandomRepl=*/false}},
    {"Repl_8K_2way_random",
     {/*LineBytes=*/64, /*Assoc=*/2, /*SizeBytes=*/8 * 1024,
      /*HitLatency=*/2, /*RandomRepl=*/true}},
    {"L2_512K_8way",
     {/*LineBytes=*/128, /*Assoc=*/8, /*SizeBytes=*/512 * 1024,
      /*HitLatency=*/8, /*RandomRepl=*/false}},
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {};

} // namespace

TEST_P(CacheGeometryTest, HitsPlusMissesEqualsAccesses) {
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  Rng R(42);
  const unsigned Accesses = 20000;
  for (unsigned I = 0; I != Accesses; ++I)
    (void)C.access(R.nextBelow(1 << 20));
  EXPECT_EQ(C.hits() + C.misses(), Accesses);
}

TEST_P(CacheGeometryTest, ResidentWorkingSetNeverMisses) {
  // A working set no larger than half the capacity, touched round-robin:
  // after the compulsory misses, every access hits — for both LRU and
  // random replacement (no replacement occurs while sets have free ways).
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  unsigned Lines = P.SizeBytes / P.LineBytes / 2;
  for (unsigned Round = 0; Round != 4; ++Round)
    for (unsigned L = 0; L != Lines; ++L)
      (void)C.access(uint64_t(L) * P.LineBytes);
  EXPECT_EQ(C.misses(), Lines); // Compulsory only.
  EXPECT_EQ(C.hits(), 3u * Lines);
}

TEST_P(CacheGeometryTest, AccessesWithinOneLineAreOneMiss) {
  // Every address inside one line maps to the same tag: one compulsory
  // miss, then hits for every byte/word offset.
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  uint64_t LineBase = 7ull * P.LineBytes;
  for (unsigned Off = 0; Off != P.LineBytes; Off += 4)
    (void)C.access(LineBase + Off);
  EXPECT_EQ(C.misses(), 1u);
}

TEST_P(CacheGeometryTest, ThrashingSweepMissesEveryTime) {
  // A sweep over twice the capacity at line stride, repeated: with LRU
  // the re-visit always finds the line already evicted (the classic
  // worst case). Random replacement retains some lines, so only require
  // a high miss rate there.
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  unsigned Lines = 2 * P.SizeBytes / P.LineBytes;
  for (unsigned Round = 0; Round != 3; ++Round)
    for (unsigned L = 0; L != Lines; ++L)
      (void)C.access(uint64_t(L) * P.LineBytes);
  uint64_t Total = C.hits() + C.misses();
  if (!P.RandomRepl)
    EXPECT_EQ(C.misses(), Total);
  else
    EXPECT_GT(C.misses(), Total / 2);
}

TEST_P(CacheGeometryTest, ProbeNeverAllocates) {
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  EXPECT_FALSE(C.probe(0x1000));
  EXPECT_FALSE(C.probe(0x1000)); // Still absent: probe is side-effect free.
  (void)C.access(0x1000);
  EXPECT_TRUE(C.probe(0x1000));
  // Probes do not perturb hit/miss accounting.
  EXPECT_EQ(C.hits() + C.misses(), 1u);
}

TEST_P(CacheGeometryTest, InvalidateEvictsExactlyThatLine) {
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  uint64_t A = 0;
  uint64_t B = P.LineBytes; // Different line (usually a different set).
  (void)C.access(A);
  (void)C.access(B);
  C.invalidate(A);
  EXPECT_FALSE(C.probe(A));
  EXPECT_TRUE(C.probe(B));
  // Invalidating an absent line is a no-op.
  C.invalidate(0x123400);
  EXPECT_TRUE(C.probe(B));
}

TEST_P(CacheGeometryTest, RandomStreamProbeAgreesWithAccess) {
  // Model-consistency oracle: replay a random stream; before each access,
  // probe() must predict exactly whether the access will hit.
  const CacheParams &P = GetParam().Params;
  Cache C(P);
  Rng R(0xCACE + P.SizeBytes);
  for (unsigned I = 0; I != 20000; ++I) {
    uint64_t Addr = R.nextBelow(4 * P.SizeBytes);
    bool Predicted = C.probe(Addr);
    bool Hit = C.access(Addr);
    ASSERT_EQ(Hit, Predicted) << "access " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometryTest,
                         ::testing::ValuesIn(Geometries),
                         [](const ::testing::TestParamInfo<Geometry> &Info) {
                           return Info.param.Name;
                         });
