//===- tests/uarch/IldpModelDetailTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed behaviour of the ILDP pipeline model: FIFO back-pressure,
/// steering affinity, ROB occupancy limits, multiply latency, replicated
/// D-cache store broadcast, and dispatch-BTB pathology.
///
//===----------------------------------------------------------------------===//

#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

TraceOp strandOp(unsigned I, uint8_t Acc, bool Continue) {
  TraceOp Op;
  Op.Class = OpClass::IntAlu;
  Op.Pc = 0x1000 + (I % 256) * 4;
  Op.NextPc = Op.Pc + 4;
  Op.StrandAcc = Acc;
  Op.AccIn = Continue;
  Op.VCredit = 1;
  return Op;
}

} // namespace

TEST(IldpDetail, FifoDepthBackpressure) {
  // Bursts of slow dependent work rotating across strands/PEs: deep FIFOs
  // let successive bursts park and drain concurrently on different PEs,
  // while depth 1 forces the in-order dispatch stage to wait for each
  // burst's issue before the next PE's burst can even enter its FIFO.
  auto Run = [&](unsigned Depth) {
    IldpParams P;
    P.FifoDepth = Depth;
    IldpModel M(P);
    M.beginSegment();
    unsigned Pc = 0;
    for (unsigned Round = 0; Round != 200; ++Round) {
      uint8_t Acc = uint8_t(Round % 4);
      for (unsigned I = 0; I != 24; ++I) {
        TraceOp Op = strandOp(Pc++, Acc, I != 0);
        Op.Class = OpClass::IntMul; // serial 7-cycle chain
        M.consume(Op);
      }
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t Shallow = Run(1);
  uint64_t Deep = Run(32);
  EXPECT_GT(Shallow, Deep + Deep / 2);
}

TEST(IldpDetail, RobLimitsInFlight) {
  auto Run = [&](unsigned Rob) {
    IldpParams P;
    P.RobSize = Rob;
    IldpModel M(P);
    M.beginSegment();
    for (unsigned I = 0; I != 20000; ++I) {
      TraceOp Op = strandOp(I, 0, I != 0);
      if (I % 16 == 0)
        Op.Class = OpClass::IntMul; // occasional long-latency head
      M.consume(Op);
    }
    M.finish();
    return M.stats().Cycles;
  };
  EXPECT_GE(Run(8), Run(128));
}

TEST(IldpDetail, MulLatencyVisible) {
  auto Run = [&](bool Muls) {
    IldpParams P;
    IldpModel M(P);
    M.beginSegment();
    for (unsigned I = 0; I != 10000; ++I) {
      TraceOp Op = strandOp(I, 0, I != 0);
      if (Muls)
        Op.Class = OpClass::IntMul;
      M.consume(Op);
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t AluCycles = Run(false);
  uint64_t MulCycles = Run(true);
  // A serial chain of multiplies costs ~MulLatency per op vs ~1.
  EXPECT_GT(MulCycles, AluCycles * 4);
}

TEST(IldpDetail, StoreBroadcastKeepsReplicasWarm) {
  // A store from one strand followed by loads of the same line from other
  // strands: replicas must have been filled by the broadcast.
  IldpParams P;
  IldpModel M(P);
  M.beginSegment();
  TraceOp St;
  St.Class = OpClass::Store;
  St.Pc = 0x1000;
  St.NextPc = 0x1004;
  St.MemAddr = 0x70000;
  St.StrandAcc = 0;
  St.VCredit = 1;
  M.consume(St);
  uint64_t MissesAfterStore = M.stats().DCacheMisses;
  for (unsigned I = 0; I != 16; ++I) {
    TraceOp Ld;
    Ld.Class = OpClass::Load;
    Ld.Pc = 0x1008 + I * 4;
    Ld.NextPc = Ld.Pc + 4;
    Ld.MemAddr = 0x70000 + (I % 8) * 8; // same line
    Ld.StrandAcc = uint8_t(I % 8);      // spread across PEs
    Ld.VCredit = 1;
    M.consume(Ld);
  }
  M.finish();
  EXPECT_EQ(M.stats().DCacheMisses, MissesAfterStore);
}

TEST(IldpDetail, StrandContinuationStaysOnPe) {
  IldpParams P;
  IldpModel M(P);
  M.beginSegment();
  for (unsigned I = 0; I != 1000; ++I)
    M.consume(strandOp(I, uint8_t(I % 4), I >= 4));
  M.finish();
  // Everything but the four strand starts continued on its PE.
  EXPECT_GE(M.strandContinuations(), 996u);
}

TEST(IldpDetail, DispatchBtbPathology) {
  // The shared dispatch jump at one fixed I-PC with rotating targets: the
  // single BTB entry mispredicts nearly every switch (Section 4.3's
  // no_pred failure mode), unlike distinct per-site jumps.
  auto Run = [&](bool SharedSite) {
    SuperscalarParams P;
    SuperscalarModel M(P, false);
    M.beginSegment();
    for (unsigned I = 0; I != 4000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::Indirect;
      Op.Pc = SharedSite ? 0x2F0000000ull : 0x2F0000000ull + (I % 4) * 64;
      Op.Taken = true;
      Op.NextPc = 0x100000 + (I % 4) * 0x100; // four rotating targets
      Op.VCredit = 1;
      M.consume(Op);
      TraceOp Filler;
      Filler.Class = OpClass::IntAlu;
      Filler.Pc = Op.NextPc;
      Filler.NextPc = Filler.Pc + 4;
      Filler.VCredit = 1;
      M.consume(Filler);
    }
    M.finish();
    return M.frontEndStats().TargetMispredicts;
  };
  uint64_t Shared = Run(true);
  uint64_t Distinct = Run(false);
  EXPECT_GT(Shared, Distinct * 3);
}

TEST(IldpDetail, PeCountBoundsThroughput) {
  // N fully independent strands: throughput is capped by PE count.
  auto Run = [&](unsigned Pes) {
    IldpParams P;
    P.NumPEs = Pes;
    IldpModel M(P);
    M.beginSegment();
    for (unsigned I = 0; I != 24000; ++I)
      M.consume(strandOp(I, uint8_t(I % 8), I >= 8));
    M.finish();
    return M.stats().ipc();
  };
  double Ipc1 = Run(1);
  EXPECT_LT(Ipc1, 1.1); // single PE: at most one per cycle
  double Ipc4 = Run(4);
  EXPECT_GT(Ipc4, Ipc1 * 2.0);
}
