//===- tests/uarch/PredictorsTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/Predictors.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

TEST(Gshare, LearnsBias) {
  GsharePredictor G(1024, 8);
  for (int I = 0; I != 16; ++I)
    G.update(0x1000, true);
  EXPECT_TRUE(G.predict(0x1000));
}

TEST(Gshare, LearnsAlternatingViaHistory) {
  GsharePredictor G(4096, 10);
  // A strictly alternating branch: with global history the pattern is
  // perfectly predictable after warmup.
  bool Dir = false;
  int Correct = 0;
  for (int I = 0; I != 400; ++I) {
    Dir = !Dir;
    if (I >= 200 && G.predict(0x2000) == Dir)
      ++Correct;
    G.update(0x2000, Dir);
  }
  EXPECT_GT(Correct, 190);
}

TEST(Btb, StoresAndReplaces) {
  Btb B(64, 4);
  EXPECT_EQ(B.predict(0x1000), 0u);
  B.update(0x1000, 0x2000);
  EXPECT_EQ(B.predict(0x1000), 0x2000u);
  B.update(0x1000, 0x3000);
  EXPECT_EQ(B.predict(0x1000), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru) {
  Btb B(8, 2); // 4 sets x 2 ways; same-set stride = 16 bytes.
  B.update(0x1000, 0xA);
  B.update(0x1010, 0xB);
  B.predict(0x1000); // predict() does not refresh LRU; update() does.
  B.update(0x1000, 0xA);
  B.update(0x1020, 0xC); // evicts 0x1010
  EXPECT_EQ(B.predict(0x1000), 0xAu);
  EXPECT_EQ(B.predict(0x1010), 0u);
  EXPECT_EQ(B.predict(0x1020), 0xCu);
}

TEST(Ras, LifoOrder) {
  ReturnAddressStack R(8);
  R.push(0x100);
  R.push(0x200);
  EXPECT_EQ(R.pop(), 0x200u);
  EXPECT_EQ(R.pop(), 0x100u);
  EXPECT_EQ(R.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsOldest) {
  ReturnAddressStack R(2);
  R.push(1);
  R.push(2);
  R.push(3); // overwrites entry 1
  EXPECT_EQ(R.pop(), 3u);
  EXPECT_EQ(R.pop(), 2u);
  // The oldest was lost; the stack is exhausted (depth tracking).
  EXPECT_EQ(R.pop(), 0u);
}

TEST(DualRas, PairsPopTogether) {
  DualAddressRas R(8);
  R.push(0x100C, 0x20000010);
  R.push(0x2008, 0x20000200);
  DualAddressRas::Pair P;
  ASSERT_TRUE(R.pop(P));
  EXPECT_EQ(P.VAddr, 0x2008u);
  EXPECT_EQ(P.IAddr, 0x20000200u);
  ASSERT_TRUE(R.pop(P));
  EXPECT_EQ(P.VAddr, 0x100Cu);
  EXPECT_FALSE(R.pop(P));
}

TEST(DualRas, DeepCallChain) {
  DualAddressRas R(8);
  for (uint64_t I = 0; I != 8; ++I)
    R.push(I, I + 100);
  for (uint64_t I = 8; I-- > 0;) {
    DualAddressRas::Pair P;
    ASSERT_TRUE(R.pop(P));
    EXPECT_EQ(P.VAddr, I);
    EXPECT_EQ(P.IAddr, I + 100);
  }
}
