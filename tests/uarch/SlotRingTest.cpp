//===- tests/uarch/SlotRingTest.cpp ---------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "uarch/SlotRing.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

TEST(SlotRing, BandwidthRespected) {
  SlotRing R(2);
  EXPECT_EQ(R.findSlot(10), 10u);
  EXPECT_EQ(R.findSlot(10), 10u);
  EXPECT_EQ(R.findSlot(10), 11u); // third claim spills to the next cycle
  EXPECT_EQ(R.findSlot(10), 11u);
  EXPECT_EQ(R.findSlot(10), 12u);
}

TEST(SlotRing, MonotonicLowerBound) {
  SlotRing R(1);
  EXPECT_EQ(R.findSlot(5), 5u);
  EXPECT_EQ(R.findSlot(3), 3u); // earlier cycles still free
  EXPECT_EQ(R.findSlot(3), 4u);
  EXPECT_EQ(R.findSlot(3), 6u); // 5 already taken
}

TEST(SlotRing, LargeCycleValues) {
  SlotRing R(4);
  uint64_t C = 1'000'000'000ull;
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_EQ(R.findSlot(C), C);
  EXPECT_EQ(R.findSlot(C), C + 1);
}
