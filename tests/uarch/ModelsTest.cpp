//===- tests/uarch/ModelsTest.cpp -----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural sanity of both timing models on synthetic streams:
/// dependence chains serialize, independent work parallelizes, machine
/// parameters move IPC in the right direction.
///
//===----------------------------------------------------------------------===//

#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::uarch;

namespace {

/// Streams N ALU ops at sequential PCs; Serial chains them through r1,
/// parallel ops write distinct registers with no inputs.
template <typename Model>
PipelineStats runAluStream(Model &M, unsigned N, bool Serial) {
  M.beginSegment();
  for (unsigned I = 0; I != N; ++I) {
    TraceOp Op;
    Op.Class = OpClass::IntAlu;
    Op.Pc = 0x1000 + (I % 256) * 4; // Small footprint: warm-up stays minor.
    Op.NextPc = Op.Pc + 4;
    Op.VCredit = 1;
    if (Serial) {
      Op.Src1 = 1;
      Op.Dest = 1;
    } else {
      Op.Dest = uint8_t(2 + (I % 8));
    }
    if (std::is_same_v<Model, IldpModel>) {
      // Give every op its own strand so steering spreads them.
      Op.StrandAcc = uint8_t(TraceAccBase + (I % 8)) - TraceAccBase;
      Op.AccIn = Serial; // serial: stay on one strand
      if (Serial)
        Op.StrandAcc = 0;
    }
    M.consume(Op);
  }
  M.finish();
  return M.stats();
}

} // namespace

TEST(SuperscalarModel, SerialChainIpcNearOne) {
  SuperscalarParams P;
  SuperscalarModel M(P, false);
  PipelineStats S = runAluStream(M, 20000, /*Serial=*/true);
  EXPECT_GT(S.ipc(), 0.8);
  EXPECT_LT(S.ipc(), 1.2);
}

TEST(SuperscalarModel, IndependentOpsReachWidth) {
  SuperscalarParams P;
  SuperscalarModel M(P, false);
  PipelineStats S = runAluStream(M, 20000, /*Serial=*/false);
  EXPECT_GT(S.ipc(), 3.4); // 4-wide machine minus compulsory-miss warm-up
}

TEST(SuperscalarModel, LoadMissesCostCycles) {
  SuperscalarParams P;
  auto RunLoads = [&](uint64_t Stride) {
    SuperscalarModel M(P, false);
    M.beginSegment();
    for (unsigned I = 0; I != 5000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::Load;
      Op.Pc = 0x1000 + (I % 256) * 4;
      Op.NextPc = Op.Pc + 4;
      Op.MemAddr = 0x100000 + uint64_t(I) * Stride;
      Op.Dest = 1;
      Op.Src1 = 1; // dependent chain of loads
      Op.VCredit = 1;
      M.consume(Op);
    }
    return M.finish();
  };
  uint64_t HitCycles = RunLoads(0);      // same address: always hits
  uint64_t MissCycles = RunLoads(4096);  // page stride: misses everywhere
  EXPECT_GT(MissCycles, HitCycles * 5);
}

TEST(IldpModel, SerialStrandIpcNearOne) {
  IldpParams P;
  IldpModel M(P);
  PipelineStats S = runAluStream(M, 20000, /*Serial=*/true);
  EXPECT_GT(S.ipc(), 0.7);
  EXPECT_LT(S.ipc(), 1.3);
}

TEST(IldpModel, ParallelStrandsScaleWithPes) {
  auto Run = [&](unsigned Pes) {
    IldpParams P;
    P.NumPEs = Pes;
    IldpModel M(P);
    M.beginSegment();
    // 8 independent strands, each a serial chain on its own accumulator.
    for (unsigned I = 0; I != 24000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::IntAlu;
      Op.Pc = 0x1000 + (I % 256) * 4; // Small footprint: warm-up stays minor.
      Op.NextPc = Op.Pc + 4;
      Op.StrandAcc = uint8_t(I % 8);
      Op.AccIn = I >= 8;
      Op.VCredit = 1;
      M.consume(Op);
    }
    M.finish();
    return M.stats().ipc();
  };
  double Ipc2 = Run(2);
  double Ipc8 = Run(8);
  EXPECT_GT(Ipc8, Ipc2 * 1.4); // more PEs -> more strand parallelism
}

TEST(IldpModel, CommunicationLatencyHurts) {
  auto Run = [&](unsigned CommLat) {
    IldpParams P;
    P.CommLatency = CommLat;
    IldpModel M(P);
    M.beginSegment();
    // Ping-pong through GPRs between two strands: communication bound.
    for (unsigned I = 0; I != 20000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::IntAlu;
      Op.Pc = 0x1000 + (I % 512) * 4;
      Op.NextPc = Op.Pc + 4;
      Op.StrandAcc = uint8_t(I % 2);
      Op.AccIn = false;
      Op.Src1 = uint8_t(2 + ((I + 1) % 2)); // read the other strand's GPR
      Op.Dest = uint8_t(2 + (I % 2));
      Op.VCredit = 1;
      M.consume(Op);
    }
    M.finish();
    return M.stats().Cycles;
  };
  uint64_t Cycles0 = Run(0);
  uint64_t Cycles2 = Run(2);
  EXPECT_GT(Cycles2, Cycles0 + Cycles0 / 10);
}

TEST(IldpModel, ArchOnlyWritesOffCriticalPath) {
  auto Run = [&](bool ArchOnly) {
    IldpParams P;
    P.CommLatency = 2;
    IldpModel M(P);
    M.beginSegment();
    for (unsigned I = 0; I != 20000; ++I) {
      TraceOp Op;
      Op.Class = OpClass::IntAlu;
      Op.Pc = 0x1000 + (I % 512) * 4;
      Op.NextPc = Op.Pc + 4;
      Op.StrandAcc = uint8_t(I % 4);
      Op.AccIn = false;
      Op.Src1 = 5;
      Op.Dest = 5;
      Op.GprWriteArchOnly = ArchOnly;
      Op.VCredit = 1;
      M.consume(Op);
    }
    M.finish();
    return M.stats().Cycles;
  };
  // Shadow-file-only writes break the (false) GPR dependence chain.
  EXPECT_LT(Run(true), Run(false));
}

TEST(Models, SegmentsDrainPipeline) {
  SuperscalarParams P;
  SuperscalarModel M(P, false);
  runAluStream(M, 100, false);
  uint64_t C1 = M.stats().Cycles;
  M.beginSegment();
  TraceOp Op;
  Op.Class = OpClass::IntAlu;
  Op.Pc = 0x1000;
  Op.NextPc = 0x1004;
  Op.VCredit = 1;
  M.consume(Op);
  M.finish();
  EXPECT_GT(M.stats().Cycles, C1); // new segment starts after the drain
  EXPECT_EQ(M.stats().Segments, 2u);
}
