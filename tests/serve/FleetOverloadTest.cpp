//===- tests/serve/FleetOverloadTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overload-control contract of the fleet scheduler (DESIGN.md §14):
/// per-tenant token-bucket rates and in-flight caps reject typed with a
/// computed RetryAfterMs and recover once the quota refills; priority
/// lanes serve a tiny interactive request ahead of a batch backlog;
/// deadline-aware shedding rejects doomed requests typed — at dequeue
/// when the deadline expired in the queue (without consuming a VM), and
/// at admission when the estimated queue wait already exceeds it; and a
/// drain shutdown in the middle of a sustained mixed-priority burst
/// fulfils every accepted promise and typed-rejects every shed request,
/// leaking nothing. The burst test runs under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "serve/ExecutionScheduler.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <chrono>
#include <future>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace ildp;
using namespace ildp::serve;

namespace {

GuestImage imageFromWords(const std::string &Name,
                          const std::vector<uint32_t> &Words, uint64_t Entry) {
  GuestImage Img;
  Img.Name = Name;
  Img.EntryPc = Entry;
  ImageSegment Seg;
  Seg.Base = Entry;
  for (uint32_t W : Words)
    for (unsigned B = 0; B != 4; ++B)
      Seg.Bytes.push_back(uint8_t(W >> (B * 8)));
  Img.Segments.push_back(std::move(Seg));
  return Img;
}

/// A guest that never halts; only a ceiling or a deadline ends it.
GuestImage spinImage() {
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(1, 1);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.operate(alpha::Opcode::ADDQ, 2, 1, 2);
  Asm.condBr(alpha::Opcode::BNE, 1, Loop);
  return imageFromWords("spin", Asm.finalize(), 0x10000);
}

/// A request that occupies a worker for \p Micros of wall time.
ExecRequest busyFor(uint64_t Micros) {
  ExecRequest Req;
  Req.Image = spinImage();
  Req.DeadlineMicros = Micros;
  return Req;
}

/// A short bounded spin (ends by instruction ceiling, InstBudgetExceeded).
ExecRequest boundedSpin(uint64_t MaxInsts) {
  ExecRequest Req;
  Req.Image = spinImage();
  Req.MaxGuestInsts = MaxInsts;
  return Req;
}

} // namespace

TEST(FleetOverload, TokenBucketRateRejectsTypedWithRetryAfter) {
  FleetConfig Config;
  Config.Workers = 2;
  Config.QueueDepth = 32;
  TenantQuota Q;
  Q.TokensPerSec = 10; // One token per 100ms once the burst is spent.
  Q.Burst = 2;
  Config.TenantQuotas["metered"] = Q;
  ExecutionScheduler Sched(Config);

  // The burst admits exactly two back-to-back requests...
  std::vector<std::future<ExecResponse>> Admitted;
  for (unsigned I = 0; I != 2; ++I) {
    ExecRequest Req = boundedSpin(10'000);
    Req.Tenant = "metered";
    Admitted.push_back(Sched.submit(Req));
  }
  // ...and the third rejects immediately, typed, with a sub-token-period
  // backoff hint.
  ExecRequest Third = boundedSpin(10'000);
  Third.Tenant = "metered";
  std::future<ExecResponse> ThirdF = Sched.submit(Third);
  ASSERT_EQ(ThirdF.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ExecResponse Rej = ThirdF.get();
  EXPECT_EQ(Rej.Status, ExecStatus::TenantQuotaExceeded);
  EXPECT_STREQ(Rej.Detail, "tenant-rate");
  EXPECT_GE(Rej.RetryAfterMs, 1u);
  EXPECT_LE(Rej.RetryAfterMs, 101u); // ceil(one token / 10 per sec).

  // An unmetered tenant is untouched by the noisy neighbour's quota.
  ExecRequest Other = boundedSpin(10'000);
  Other.Tenant = "quiet";
  EXPECT_EQ(Sched.submit(Other).get().Status,
            ExecStatus::InstBudgetExceeded);

  // Waiting out the hint refills a token: the retry is admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(Rej.RetryAfterMs + 5));
  ExecRequest Retry = boundedSpin(10'000);
  Retry.Tenant = "metered";
  EXPECT_EQ(Sched.submit(Retry).get().Status,
            ExecStatus::InstBudgetExceeded);

  for (std::future<ExecResponse> &F : Admitted)
    EXPECT_EQ(F.get().Status, ExecStatus::InstBudgetExceeded);

  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.rejected.tenant-quota"), 1u);
  EXPECT_EQ(S.get("serve.tenant.metered.rejected.tenant-quota"), 1u);
  EXPECT_EQ(S.get("serve.tenant.quiet.rejected.tenant-quota"), 0u);
}

TEST(FleetOverload, InFlightCapRejectsAndReleasesOnCompletion) {
  FleetConfig Config;
  Config.Workers = 1;
  Config.QueueDepth = 8;
  TenantQuota Q;
  Q.MaxInFlight = 1;
  Config.TenantQuotas["capped"] = Q;
  ExecutionScheduler Sched(Config);

  ExecRequest Busy = busyFor(300'000);
  Busy.Tenant = "capped";
  std::future<ExecResponse> BusyF = Sched.submit(Busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Sched.admission().inFlight("capped"), 1u);

  // Queued-or-executing counts against the cap: the second submit rejects
  // typed while the first is still in flight.
  ExecRequest Second = boundedSpin(10'000);
  Second.Tenant = "capped";
  ExecResponse Rej = Sched.submit(Second).get();
  EXPECT_EQ(Rej.Status, ExecStatus::TenantQuotaExceeded);
  EXPECT_STREQ(Rej.Detail, "tenant-inflight");
  EXPECT_GE(Rej.RetryAfterMs, 1u);

  // Another tenant is not capped by it.
  ExecRequest Other = boundedSpin(10'000);
  Other.Tenant = "neighbour";
  std::future<ExecResponse> OtherF = Sched.submit(Other);

  // Once the busy request finishes, the slot frees and the tenant is
  // admitted again.
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(OtherF.get().Status, ExecStatus::InstBudgetExceeded);
  EXPECT_EQ(Sched.admission().inFlight("capped"), 0u);
  ExecRequest Retry = boundedSpin(10'000);
  Retry.Tenant = "capped";
  EXPECT_EQ(Sched.submit(Retry).get().Status,
            ExecStatus::InstBudgetExceeded);
}

TEST(FleetOverload, InteractiveLaneJumpsBatchBacklog) {
  FleetConfig Config;
  Config.Workers = 1;
  Config.QueueDepth = 32;
  ExecutionScheduler Sched(Config);

  // Occupy the one worker, then queue a batch backlog followed by one
  // interactive request.
  std::future<ExecResponse> BusyF = Sched.submit(busyFor(250'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::future<ExecResponse>> Batch;
  for (unsigned I = 0; I != 5; ++I) {
    ExecRequest Req = boundedSpin(5'000'000); // Substantial work each.
    Req.Lane = Priority::Batch;
    Batch.push_back(Sched.submit(Req));
  }
  ExecRequest Tiny = boundedSpin(1'000); // Trivial work.
  Tiny.Lane = Priority::Interactive;
  std::future<ExecResponse> TinyF = Sched.submit(Tiny);

  // Weighted-deficit dequeue: when the worker frees, the interactive lane
  // has round credit, so the tiny request is served before the batch
  // backlog — despite arriving last.
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(TinyF.get().Status, ExecStatus::InstBudgetExceeded);
  unsigned BatchStillPending = 0;
  for (std::future<ExecResponse> &F : Batch)
    if (F.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
      ++BatchStillPending;
  // At the moment the interactive response lands, at most one batch
  // request can have been served (scheduling noise margin); with FIFO it
  // would have waited behind all five.
  EXPECT_GE(BatchStillPending, 4u);

  for (std::future<ExecResponse> &F : Batch)
    EXPECT_EQ(F.get().Status, ExecStatus::InstBudgetExceeded);
  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.lane.interactive.served"), 1u);
  EXPECT_EQ(S.get("serve.lane.batch.served"), 5u);
}

TEST(FleetOverload, PerLaneDepthBoundsIsolateFloods) {
  FleetConfig Config;
  Config.Workers = 1;
  Config.LaneDepths = {4, 2, 2}; // Interactive, Normal, Batch.
  ExecutionScheduler Sched(Config);

  std::future<ExecResponse> BusyF = Sched.submit(busyFor(250'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Flood the batch lane: its two slots fill, the rest reject queue-full.
  std::vector<std::future<ExecResponse>> Flood;
  for (unsigned I = 0; I != 6; ++I) {
    ExecRequest Req = boundedSpin(1'000);
    Req.Lane = Priority::Batch;
    Flood.push_back(Sched.submit(Req));
  }
  unsigned Full = 0;
  for (std::future<ExecResponse> &F : Flood) {
    if (F.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ExecResponse Resp = F.get();
      EXPECT_EQ(Resp.Status, ExecStatus::QueueFull);
      EXPECT_GE(Resp.RetryAfterMs, 1u);
      ++Full;
    }
  }
  EXPECT_EQ(Full, 4u); // 6 submitted, 2 batch slots.

  // The flooded batch lane does not consume interactive capacity.
  ExecRequest Tiny = boundedSpin(1'000);
  Tiny.Lane = Priority::Interactive;
  std::future<ExecResponse> TinyF = Sched.submit(Tiny);
  ASSERT_NE(TinyF.wait_for(std::chrono::seconds(0)),
            std::future_status::ready); // Queued, not rejected.
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(TinyF.get().Status, ExecStatus::InstBudgetExceeded);
  EXPECT_EQ(Sched.shutdown(/*FinishQueued=*/true), 0u);
}

TEST(FleetOverload, DeadlineExpiredInQueueShedsWithoutTouchingVm) {
  FleetConfig Config;
  Config.Workers = 1;
  Config.QueueDepth = 8;
  ExecutionScheduler Sched(Config);

  // Hold the one worker well past the victim's deadline.
  std::future<ExecResponse> BusyF = Sched.submit(busyFor(250'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ExecRequest Victim = boundedSpin(1'000'000);
  Victim.DeadlineMicros = 50'000; // Expires while queued.
  std::future<ExecResponse> VictimF = Sched.submit(Victim);

  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  ExecResponse Resp = VictimF.get();
  EXPECT_EQ(Resp.Status, ExecStatus::DeadlineExceeded);
  EXPECT_STREQ(Resp.Detail, "wall-deadline");
  // Shed at dequeue: no VM was built, no guest instruction ran, no
  // statistics moved — the whole point of shedding a doomed request.
  EXPECT_EQ(Resp.GuestInsts, 0u);
  EXPECT_EQ(Resp.WallMicros, 0.0);
  EXPECT_EQ(Resp.Stats.get("dbt.cost.total"), 0u);
  EXPECT_EQ(Resp.Stats.get("interp.insts"), 0u);

  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.shed.expired_in_queue"), 1u);
  // Two deadline rejections total: the busy spin (ran out mid-flight) and
  // the shed victim; only the victim counts as a shed.
  EXPECT_EQ(S.get("serve.rejected.deadline"), 2u);
}

TEST(FleetOverload, DoomedDeadlineShedsAtAdmission) {
  FleetConfig Config;
  Config.Workers = 1;
  Config.QueueDepth = 16;
  ExecutionScheduler Sched(Config);

  // Seed the service-time EWMA with one real completion (the estimator
  // never sheds before its first sample).
  EXPECT_EQ(Sched.submit(boundedSpin(2'000'000)).get().Status,
            ExecStatus::InstBudgetExceeded);
  ASSERT_GT(Sched.admission().ewmaServiceMicros(), 0u);

  // Occupy the worker and build a backlog in the normal lane.
  std::future<ExecResponse> BusyF = Sched.submit(busyFor(250'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<std::future<ExecResponse>> Backlog;
  for (unsigned I = 0; I != 8; ++I)
    Backlog.push_back(Sched.submit(boundedSpin(2'000'000)));

  // A 1ms deadline behind an 8-deep backlog is unmeetable: admission
  // sheds it immediately, typed, before it wastes a lane slot.
  ExecRequest Doomed = boundedSpin(1'000'000);
  Doomed.DeadlineMicros = 1'000;
  std::future<ExecResponse> DoomedF = Sched.submit(Doomed);
  ASSERT_EQ(DoomedF.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ExecResponse Resp = DoomedF.get();
  EXPECT_EQ(Resp.Status, ExecStatus::DeadlineExceeded);
  EXPECT_STREQ(Resp.Detail, "deadline-unmeetable");
  EXPECT_EQ(Resp.GuestInsts, 0u);

  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  for (std::future<ExecResponse> &F : Backlog)
    EXPECT_EQ(F.get().Status, ExecStatus::InstBudgetExceeded);
  EXPECT_EQ(Sched.fleet().stats().get("serve.shed.deadline_unmeetable"), 1u);
}

TEST(FleetOverload, QuotaReservationRefundedOnQueueFull) {
  // A request admitted by quota but rejected by a full lane must hand its
  // in-flight slot back — otherwise the tenant's cap leaks shut.
  FleetConfig Config;
  Config.Workers = 1;
  Config.LaneDepths = {1, 1, 1};
  TenantQuota Q;
  Q.MaxInFlight = 3;
  Config.TenantQuotas["t"] = Q;
  ExecutionScheduler Sched(Config);

  ExecRequest Busy = busyFor(250'000);
  Busy.Tenant = "t";
  std::future<ExecResponse> BusyF = Sched.submit(Busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ExecRequest Req = boundedSpin(1'000);
  Req.Tenant = "t";
  std::future<ExecResponse> QueuedF = Sched.submit(Req); // Fills the lane.
  for (unsigned I = 0; I != 3; ++I) {
    ExecRequest R = Req;
    ExecResponse Resp = Sched.submit(R).get();
    EXPECT_EQ(Resp.Status, ExecStatus::QueueFull); // Not tenant-quota:
  }                                                // slots were refunded.
  EXPECT_EQ(Sched.admission().inFlight("t"), 2u); // Busy + queued only.
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(QueuedF.get().Status, ExecStatus::InstBudgetExceeded);
  EXPECT_EQ(Sched.admission().inFlight("t"), 0u);
}

TEST(FleetOverload, DrainShutdownDuringMixedBurstLeaksNothing) {
  // Satellite contract: shutdown(FinishQueued) in the middle of a
  // sustained mixed-priority burst with a quota-limited hostile tenant.
  // Every accepted promise is fulfilled (drained requests execute, and a
  // queued request whose deadline lapsed before its turn sheds typed);
  // every rejection is typed; nothing is left unfulfilled.
  FleetConfig Config;
  Config.Workers = 2;
  Config.LaneDepths = {8, 8, 8};
  TenantQuota Hostile;
  Hostile.TokensPerSec = 200;
  Hostile.Burst = 4;
  Hostile.MaxInFlight = 4;
  Config.TenantQuotas["hostile"] = Hostile;
  ExecutionScheduler Sched(Config);

  constexpr unsigned Submitters = 3;
  constexpr unsigned Each = 40;
  std::vector<std::vector<std::future<ExecResponse>>> Futures(Submitters);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Submitters; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != Each; ++I) {
        ExecRequest Req = boundedSpin(200'000);
        Req.Lane = Priority(T % NumPriorities);
        Req.Tenant = T == 2 ? "hostile" : "good";
        if (I % 4 == 0)
          Req.DeadlineMicros = 2'000; // Some will lapse while queued.
        Futures[T].push_back(Sched.submit(Req));
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });

  // Shut down mid-burst, draining what was accepted.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  Sched.shutdown(/*FinishQueued=*/true);
  for (std::thread &T : Threads)
    T.join();

  unsigned Fulfilled = 0;
  for (std::vector<std::future<ExecResponse>> &PerThread : Futures)
    for (std::future<ExecResponse> &F : PerThread) {
      // No promise leaked: every future is ready once shutdown returned
      // and the submitters joined.
      ASSERT_EQ(F.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      ExecResponse Resp = F.get();
      ++Fulfilled;
      switch (Resp.Status) {
      case ExecStatus::Ok:
      case ExecStatus::InstBudgetExceeded:
      case ExecStatus::DeadlineExceeded: // Ran out, or shed typed.
        break;
      case ExecStatus::QueueFull:
      case ExecStatus::ShutDown:
        break;
      case ExecStatus::TenantQuotaExceeded:
        EXPECT_GE(Resp.RetryAfterMs, 1u); // Quota rejections carry a hint.
        break;
      default:
        ADD_FAILURE() << "untyped response: "
                      << getExecStatusName(Resp.Status) << " "
                      << Resp.Detail;
      }
    }
  EXPECT_EQ(Fulfilled, Submitters * Each);

  // Fleet accounting covers every submission exactly once.
  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.requests"), Submitters * Each);
}
