//===- tests/serve/HostSupervisorTest.cpp ---------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process fleet contract (DESIGN.md §15) against real spawned
/// ildp-crashhost processes: requests are served warm from the shared
/// store, a host crash (injected or SIGKILL) converts its in-flight
/// requests into typed HostCrashed responses — never hung futures — the
/// crashed slot is restarted and serves warm again, survivors keep the
/// fleet available throughout, and a crash-looping host is abandoned
/// after MaxRestarts with submissions still answered typed. Runs in the
/// serve test binary, so CI's TSan and ASan jobs cover the supervisor's
/// slot threads and pipe protocol.
///
//===----------------------------------------------------------------------===//

#include "serve/HostSupervisor.h"

#include "persist/CacheStore.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>

#ifndef _WIN32
#include <csignal>
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::serve;

#if !defined(_WIN32) && defined(ILDP_CRASHHOST_BIN)

namespace {

/// Every future must resolve within a bound — the no-hung-futures
/// contract, enforced as a hard test failure rather than a test timeout.
constexpr auto ReplyBound = std::chrono::seconds(60);

bool getReply(std::future<HostReply> &&F, HostReply &Out) {
  if (F.wait_for(ReplyBound) != std::future_status::ready)
    return false;
  Out = F.get();
  return true;
}

/// Builds a warm store holding \p Workloads at \p Path (in-process; the
/// hosts under test open it read-only).
std::string seededStore(const char *Name,
                        std::initializer_list<const char *> Workloads) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  for (const char *W : Workloads) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    vm::VmConfig Config;
    Config.PersistPath = Path;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    EXPECT_EQ(Vm.run().Reason, vm::StopReason::Halted) << W;
  }
  return Path;
}

SupervisorConfig baseConfig(const std::string &StorePath) {
  SupervisorConfig Config;
  Config.HostBinary = ILDP_CRASHHOST_BIN;
  Config.StorePath = StorePath;
  Config.Hosts = 1;
  return Config;
}

/// Retries a request across HostCrashed rejections (honoring the retry
/// hint) until a served response arrives or attempts run out.
bool submitUntilServed(HostSupervisor &Sup, const std::string &Line,
                       HostReply &Out, int Attempts = 30) {
  for (int I = 0; I != Attempts; ++I) {
    if (!getReply(Sup.submit(Line), Out))
      return false; // Hung future: fail loudly at the caller.
    if (Out.Status != ExecStatus::HostCrashed)
      return true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Out.RetryAfterMs ? Out.RetryAfterMs : 20));
  }
  return false;
}

} // namespace

TEST(HostSupervisor, StartFailsOnMissingBinary) {
  SupervisorConfig Config;
  Config.HostBinary = "/no/such/binary";
  HostSupervisor Sup(Config);
  EXPECT_FALSE(Sup.start());
  // A failed start stays a failure: retrying must not report vacuous
  // success over zero live hosts.
  EXPECT_FALSE(Sup.start());
  EXPECT_EQ(Sup.liveHosts(), 0u);
  // Submissions against a never-started fleet still resolve typed.
  HostReply R;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), R));
  EXPECT_EQ(R.Status, ExecStatus::HostCrashed);
  EXPECT_GE(Sup.rejectedNoHost(), 1u);
}

TEST(HostSupervisor, ServesWarmFromSharedStore) {
  std::string Store = seededStore("sup-warm.tstore", {"gzip", "mcf"});
  HostSupervisor Sup(baseConfig(Store));
  ASSERT_TRUE(Sup.start());
  EXPECT_EQ(Sup.liveHosts(), 1u);

  HostReply R;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), R));
  ASSERT_TRUE(R.ok()) << R.Raw;
  EXPECT_NE(R.Checksum, 0u);
  EXPECT_GT(R.GuestInsts, 0u);
  // The §11 payoff across a process boundary: the host warm-started from
  // the shared store, so the request did zero translation work.
  EXPECT_EQ(R.CostUnits, 0u) << R.Raw;

  // Requests run the real service stack inside the host: a typed
  // rejection crosses the pipe as itself, not as a crash.
  ASSERT_TRUE(getReply(Sup.submit("run mcf deadline_us=1"), R));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Status, ExecStatus::HostCrashed) << R.Raw;
  ASSERT_TRUE(getReply(Sup.submit("run no-such-workload"), R));
  EXPECT_EQ(R.Status, ExecStatus::BadImage) << R.Raw;
  Sup.shutdown();
}

TEST(HostSupervisor, InjectedCrashResolvesInFlightTyped) {
  std::string Store = seededStore("sup-crash.tstore", {"gzip"});
  SupervisorConfig Config = baseConfig(Store);
  Config.MaxRestarts = 8;
  Config.CrashRetryAfterMs = 25;
  // Every host generation dies on its second request.
  Config.HostEnv = {"ILDP_CRASH_SCHEDULE=mid_request=2"};
  HostSupervisor Sup(Config);
  ASSERT_TRUE(Sup.start());

  HostReply R1;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), R1));
  EXPECT_TRUE(R1.ok()) << R1.Raw;

  // The in-flight request on the dying host resolves typed, with the
  // configured retry hint — never a hung future.
  HostReply R2;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), R2));
  EXPECT_EQ(R2.Status, ExecStatus::HostCrashed);
  EXPECT_EQ(R2.RetryAfterMs, 25u);
  EXPECT_GE(Sup.crashedInFlight(), 1u);

  // The slot restarts and serves warm again: the crash cost zero
  // re-translation.
  HostReply R3;
  ASSERT_TRUE(submitUntilServed(Sup, "run gzip", R3));
  EXPECT_TRUE(R3.ok()) << R3.Raw;
  EXPECT_EQ(R3.CostUnits, 0u) << R3.Raw;
  EXPECT_GE(Sup.restarts(), 1u);
  Sup.shutdown();
}

TEST(HostSupervisor, SigkilledHostIsRestartedAndServes) {
  std::string Store = seededStore("sup-kill.tstore", {"gzip"});
  SupervisorConfig Config = baseConfig(Store);
  Config.MaxRestarts = 4;
  HostSupervisor Sup(Config);
  ASSERT_TRUE(Sup.start());

  HostReply R;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), R));
  ASSERT_TRUE(R.ok()) << R.Raw;

  // A real SIGKILL — indistinguishable from the injected _exit(137) by
  // design — on the live host.
  long Pid = Sup.hostPid(0);
  ASSERT_GT(Pid, 0);
  ASSERT_EQ(::kill(pid_t(Pid), SIGKILL), 0);

  HostReply After;
  ASSERT_TRUE(submitUntilServed(Sup, "run gzip", After));
  EXPECT_TRUE(After.ok()) << After.Raw;
  EXPECT_EQ(After.CostUnits, 0u) << After.Raw;
  EXPECT_GE(Sup.restarts(), 1u);
  EXPECT_NE(Sup.hostPid(0), Pid); // A new process, same slot.
  Sup.shutdown();
}

TEST(HostSupervisor, SurvivorKeepsServingWhileSlotRestarts) {
  std::string Store = seededStore("sup-survivor.tstore", {"gzip"});
  SupervisorConfig Config = baseConfig(Store);
  Config.Hosts = 2;
  HostSupervisor Sup(Config);
  ASSERT_TRUE(Sup.start());
  EXPECT_EQ(Sup.liveHosts(), 2u);

  long Victim = Sup.hostPid(0);
  ASSERT_GT(Victim, 0);
  ASSERT_EQ(::kill(pid_t(Victim), SIGKILL), 0);

  // With one slot down, the fleet still serves: submission fails over to
  // the survivor (plus at most a HostCrashed retry for requests written
  // to the dying pipe during the race).
  unsigned Served = 0;
  for (int I = 0; I != 6; ++I) {
    HostReply R;
    ASSERT_TRUE(submitUntilServed(Sup, "run gzip", R)) << "request " << I;
    EXPECT_TRUE(R.ok()) << R.Raw;
    ++Served;
  }
  EXPECT_EQ(Served, 6u);
  Sup.shutdown();
}

TEST(HostSupervisor, CrashLoopingHostIsAbandonedTyped) {
  std::string Store = seededStore("sup-loop.tstore", {"gzip"});
  SupervisorConfig Config = baseConfig(Store);
  Config.MaxRestarts = 2;
  // Every generation dies on its FIRST request: a crash loop.
  Config.HostEnv = {"ILDP_CRASH_SCHEDULE=mid_request=1"};
  HostSupervisor Sup(Config);
  ASSERT_TRUE(Sup.start());

  // Submissions keep resolving typed while the slot burns through its
  // restart budget and after it is abandoned — never a hang, never a
  // spin. Generously more attempts than restarts so the abandoned state
  // is reached.
  for (int I = 0; I != 12; ++I) {
    HostReply R;
    ASSERT_TRUE(getReply(Sup.submit("run gzip"), R)) << "request " << I;
    EXPECT_EQ(R.Status, ExecStatus::HostCrashed) << R.Raw;
    EXPECT_GE(R.RetryAfterMs, 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // The slot gave up (MaxRestarts) and dead-fleet submissions were
  // rejected immediately.
  EXPECT_LE(Sup.restarts(), 2u);
  EXPECT_GE(Sup.rejectedNoHost(), 1u);
  EXPECT_EQ(Sup.liveHosts(), 0u);
  Sup.shutdown();
}

TEST(HostSupervisor, ShutdownDuringRestartChurnReturns) {
  std::string Store = seededStore("sup-churn.tstore", {"gzip"});
  SupervisorConfig Config = baseConfig(Store);
  Config.Hosts = 2;
  Config.MaxRestarts = 1'000; // Effectively unlimited for this test.
  // Every generation dies on its first request, so the slots cycle
  // through teardown -> respawn continuously — maximizing the window
  // where shutdown()'s quit pass finds a slot between children
  // (Live == false) and writes nothing. A host spawned after that pass
  // must still be told to quit, or shutdown() joins forever.
  Config.HostEnv = {"ILDP_CRASH_SCHEDULE=mid_request=1"};
  HostSupervisor Sup(Config);
  ASSERT_TRUE(Sup.start());

  std::atomic<bool> Stop{false};
  std::thread Pump([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      (void)Sup.submit("run gzip"); // Keep hosts dying and respawning.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Sup.shutdown(); // Reaching the next line IS the assertion: no hang.
  Stop.store(true, std::memory_order_release);
  Pump.join();
  EXPECT_EQ(Sup.liveHosts(), 0u);
}

TEST(HostSupervisor, ShutdownDrainsAndIsIdempotent) {
  std::string Store = seededStore("sup-shutdown.tstore", {"gzip"});
  HostSupervisor Sup(baseConfig(Store));
  ASSERT_TRUE(Sup.start());

  // Work in flight at shutdown: the host drains it (quit = finish
  // queued), so the future resolves with the real answer.
  std::future<HostReply> Pending = Sup.submit("run gzip");
  Sup.shutdown();
  ASSERT_EQ(Pending.wait_for(ReplyBound), std::future_status::ready);
  HostReply R = Pending.get();
  EXPECT_TRUE(R.ok() || R.Status == ExecStatus::HostCrashed) << R.Raw;

  Sup.shutdown(); // Idempotent.
  // Post-shutdown submissions resolve immediately, typed.
  HostReply After;
  ASSERT_TRUE(getReply(Sup.submit("run gzip"), After));
  EXPECT_EQ(After.Status, ExecStatus::HostCrashed);
  EXPECT_EQ(After.Detail, "no-live-host");
}

#endif // !_WIN32 && ILDP_CRASHHOST_BIN
