//===- tests/serve/FleetConformanceTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet service's correctness contract: every ExecResponse is
/// bit-identical — architected register state and checksum — to a
/// standalone cold VM run of the same workload, across the full cell
/// matrix of {1, 4, 8 fleet workers} x {warm shared store, cold} x
/// {no faults, armed import/codegen fault on every request} x {unbounded,
/// tiny per-tenant code-cache budget}. Concurrency, warm starts, injected
/// faults, and eviction pressure may change how a request is served —
/// never what it computes. The warm no-fault unbounded cells additionally
/// prove the point of the fleet: ZERO translation work across all twelve
/// workloads, all served by one read-only store.
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "serve/ExecutionScheduler.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <future>
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <tuple>
#include <unistd.h>
#include <vector>

using namespace ildp;
using namespace ildp::serve;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

constexpr uint64_t TinyBudget = 4096; // Same pressure point as VmConformance.
const char *const TinyTenant = "tiny-tenant";

/// Reference final state from a standalone cold default-config VM,
/// computed once per workload and reused by every cell.
const ArchState &referenceRun(const std::string &Name) {
  static std::map<std::string, ArchState> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  vm::VirtualMachine Vm(Mem, Img.EntryPc, vm::VmConfig{});
  EXPECT_EQ(Vm.run().Reason, vm::StopReason::Halted) << Name;
  return Cache.emplace(Name, Vm.interpreter().state()).first->second;
}

/// One shared warm store serving every workload, seeded once by cold
/// default-config saving runs (the VmConformanceTest recipe).
const std::string &sharedStorePath() {
  static std::string Path;
  if (!Path.empty())
    return Path;
  // Pid-unique: parallel ctest runs every cell in its own process, each
  // with its own lazy seeding pass over this path.
  Path = testing::TempDir() + "/fleet-conformance." +
         std::to_string(getpid()) + ".tstore";
  std::remove(Path.c_str());
  for (const std::string &W : workloads::workloadNames()) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    vm::VmConfig Config;
    Config.PersistPath = Path;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    EXPECT_EQ(Vm.run().Reason, vm::StopReason::Halted) << "seeding " << W;
  }
  return Path;
}

void expectSameGprs(const ArchState &Got, const ArchState &Ref,
                    const std::string &Context) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

struct Cell {
  unsigned Workers = 1;
  bool Warm = false;
  bool Fault = false;
  bool Tiny = false;
};

} // namespace

class FleetConformance
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, bool, bool>> {
};

TEST_P(FleetConformance, ResponsesBitIdenticalToStandaloneRuns) {
  Cell C;
  std::tie(C.Workers, C.Warm, C.Fault, C.Tiny) = GetParam();
  std::string Suffix = "/w" + std::to_string(C.Workers) +
                       (C.Warm ? "/warm" : "/cold") +
                       (C.Fault ? "/fault" : "") + (C.Tiny ? "/tiny" : "");

  FleetConfig Config;
  Config.Workers = C.Workers;
  Config.QueueDepth = 64;
  if (C.Warm)
    Config.StorePath = sharedStorePath();
  if (C.Tiny)
    Config.TenantCacheBytes[TinyTenant] = TinyBudget;

  // Every request trips the fault site: warm cells lose their import
  // (degrade to a counted cold start), cold cells lose their first
  // code-generation attempt (degrade to interpret-and-retry).
  FaultInjector Inj;
  if (C.Fault) {
    Inj.armAlways(C.Warm ? FaultSite::PersistImport : FaultSite::CodeGen);
    Config.BaseVm.Dbt.Fault = &Inj;
  }

  ExecutionScheduler Sched(Config);
  ASSERT_EQ(Sched.fleet().storeLoaded(), C.Warm);
  ASSERT_EQ(Sched.fleet().registerWorkloads(),
            workloads::workloadNames().size());

  std::vector<std::string> Names = workloads::workloadNames();
  std::vector<std::future<ExecResponse>> Futures;
  for (const std::string &W : Names) {
    ExecRequest Req;
    Req.Workload = W;
    if (C.Tiny)
      Req.Tenant = TinyTenant;
    Futures.push_back(Sched.submit(Req));
  }

  for (size_t I = 0; I != Names.size(); ++I) {
    ExecResponse Resp = Futures[I].get();
    std::string Context = Names[I] + Suffix;
    const ArchState &Ref = referenceRun(Names[I]);

    ASSERT_EQ(Resp.Status, ExecStatus::Ok) << Context << ": " << Resp.Detail;
    expectSameGprs(Resp.Arch, Ref, Context);
    EXPECT_EQ(Resp.Checksum, Ref.readGpr(alpha::RegV0)) << Context;
    EXPECT_LT(Resp.Worker, C.Workers) << Context;
    EXPECT_GT(Resp.GuestInsts, 0u) << Context;

    if (C.Tiny) {
      EXPECT_LE(Resp.Stats.get("cache.budget_high_water"), TinyBudget)
          << Context;
    }

    if (C.Warm && !C.Fault) {
      // Every request hits its slot in the one shared read-only store.
      EXPECT_EQ(Resp.Stats.get("persist.store_readonly"), 1u) << Context;
      EXPECT_EQ(Resp.Stats.get("persist.store_hit"), 1u) << Context;
      if (!C.Tiny) {
        // The fleet's reason to exist: warm requests do ZERO translation.
        EXPECT_EQ(Resp.Stats.get("dbt.fragments"), 0u) << Context;
        EXPECT_EQ(Resp.Stats.get("dbt.cost.total"), 0u) << Context;
      }
    } else if (C.Warm && C.Fault) {
      EXPECT_EQ(Resp.Stats.get("persist.import_rejected.injected-fault"), 1u)
          << Context;
      EXPECT_GT(Resp.Stats.get("dbt.fragments"), 0u) << Context;
    }
  }

  // Fleet-level accounting covers exactly these requests.
  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.requests"), Names.size());
  EXPECT_EQ(S.get("serve.ok"), Names.size());
  if (C.Warm && !C.Fault) {
    EXPECT_EQ(S.get("serve.store_hits"), Names.size());
  }

  EXPECT_EQ(Sched.shutdown(/*FinishQueued=*/true), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FleetConformance,
    ::testing::Combine(::testing::Values(1u, 4u, 8u), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, bool, bool, bool>>
           &Info) {
      return "Workers" + std::to_string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) ? "Warm" : "Cold") +
             (std::get<2>(Info.param) ? "Fault" : "NoFault") +
             (std::get<3>(Info.param) ? "Tiny" : "Unbounded");
    });

/// The three image-transport routes — registered name, registered
/// fingerprint, inline bytes — must be indistinguishable in results, and
/// the inline route must still warm from the shared store (the snapshot
/// is page-identical, so the fingerprint matches).
TEST(FleetConformance, ImageTransportRoutesAreEquivalent) {
  const std::string Name = workloads::workloadNames().front();
  const ArchState &Ref = referenceRun(Name);

  FleetConfig Config;
  Config.StorePath = sharedStorePath();
  VmFleet Fleet(Config);
  ASSERT_TRUE(Fleet.storeLoaded());
  uint64_t Fingerprint = Fleet.registerImage(imageFromWorkload(Name));
  ASSERT_NE(Fingerprint, 0u);

  ExecRequest ByName;
  ByName.Workload = Name;
  ExecRequest ByFingerprint;
  ByFingerprint.ImageFingerprint = Fingerprint;
  ExecRequest Inline;
  Inline.Image = imageFromWorkload(Name);

  for (ExecRequest *Req : {&ByName, &ByFingerprint, &Inline}) {
    ExecResponse Resp = Fleet.execute(*Req);
    ASSERT_EQ(Resp.Status, ExecStatus::Ok) << Resp.Detail;
    expectSameGprs(Resp.Arch, Ref, "transport");
    EXPECT_EQ(Resp.Checksum, Ref.readGpr(alpha::RegV0));
    // All three routes reach the same store slot.
    EXPECT_EQ(Resp.Stats.get("persist.store_hit"), 1u);
    EXPECT_EQ(Resp.Stats.get("dbt.cost.total"), 0u);
  }
}
