//===- tests/serve/ExecutionSchedulerTest.cpp -----------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler's service semantics: non-blocking admission control
/// (queue-full is an immediate typed response), per-request instruction
/// ceilings and wall-clock deadlines, per-tenant cache budgets, typed
/// bad-image and trap outcomes, and the two shutdown modes — drain
/// (queued requests complete) and cancel (queued requests reject typed) —
/// with every accepted future fulfilled either way. The concurrent
/// submitter test runs under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "serve/ExecutionScheduler.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <chrono>
#include <future>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace ildp;
using namespace ildp::serve;

namespace {

GuestImage imageFromWords(const std::string &Name,
                          const std::vector<uint32_t> &Words, uint64_t Entry) {
  GuestImage Img;
  Img.Name = Name;
  Img.EntryPc = Entry;
  ImageSegment Seg;
  Seg.Base = Entry;
  for (uint32_t W : Words)
    for (unsigned B = 0; B != 4; ++B)
      Seg.Bytes.push_back(uint8_t(W >> (B * 8)));
  Img.Segments.push_back(std::move(Seg));
  return Img;
}

/// A guest that never halts: r1 = 1; loop: r2 += r1; if (r1 != 0) goto
/// loop. Only a ceiling or a deadline can end it.
GuestImage spinImage() {
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(1, 1);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.operate(alpha::Opcode::ADDQ, 2, 1, 2);
  Asm.condBr(alpha::Opcode::BNE, 1, Loop);
  uint64_t Entry = 0x10000;
  return imageFromWords("spin", Asm.finalize(), Entry);
}

/// A guest whose first real work is a load from unmapped memory.
GuestImage trapImage() {
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(1, int64_t(0x40000000));
  Asm.ldq(2, 0, 1);
  Asm.halt();
  return imageFromWords("trap", Asm.finalize(), 0x10000);
}

FleetConfig quickConfig(unsigned Workers, size_t QueueDepth) {
  FleetConfig Config;
  Config.Workers = Workers;
  Config.QueueDepth = QueueDepth;
  return Config;
}

} // namespace

TEST(ExecutionScheduler, FullQueueRejectsImmediatelyTyped) {
  ExecutionScheduler Sched(quickConfig(/*Workers=*/1, /*QueueDepth=*/1));

  // Occupy the one worker with a deadline-bounded spin, long enough that
  // everything below happens while it runs.
  ExecRequest Busy;
  Busy.Image = spinImage();
  Busy.DeadlineMicros = 400'000;
  std::future<ExecResponse> BusyF = Sched.submit(Busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The worker is mid-request: this fills the queue's one slot...
  ExecRequest Queued = Busy;
  std::future<ExecResponse> QueuedF = Sched.submit(Queued);
  // ...so further submits must reject instantly — submit() never blocks.
  std::vector<std::future<ExecResponse>> Rejected;
  for (unsigned I = 0; I != 4; ++I)
    Rejected.push_back(Sched.submit(Busy));
  for (std::future<ExecResponse> &F : Rejected) {
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    ExecResponse Resp = F.get();
    EXPECT_EQ(Resp.Status, ExecStatus::QueueFull);
    EXPECT_STREQ(Resp.Detail, "queue-full");
  }

  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(QueuedF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(Sched.fleet().stats().get("serve.rejected.queue-full"), 4u);
}

TEST(ExecutionScheduler, DrainShutdownCompletesEverythingQueued) {
  ExecutionScheduler Sched(quickConfig(/*Workers=*/1, /*QueueDepth=*/16));
  Sched.fleet().registerWorkloads();

  std::vector<std::future<ExecResponse>> Futures;
  for (const std::string &W : workloads::workloadNames()) {
    ExecRequest Req;
    Req.Workload = W;
    Futures.push_back(Sched.submit(Req));
  }
  // Drain: with one worker most of these are still queued, and every one
  // must complete successfully anyway.
  EXPECT_EQ(Sched.shutdown(/*FinishQueued=*/true), 0u);
  for (std::future<ExecResponse> &F : Futures)
    EXPECT_EQ(F.get().Status, ExecStatus::Ok);
  EXPECT_TRUE(Sched.stopped());
}

TEST(ExecutionScheduler, CancelShutdownRejectsQueuedTyped) {
  ExecutionScheduler Sched(quickConfig(/*Workers=*/1, /*QueueDepth=*/16));
  Sched.fleet().registerWorkloads();

  ExecRequest Busy;
  Busy.Image = spinImage();
  Busy.DeadlineMicros = 400'000;
  std::future<ExecResponse> BusyF = Sched.submit(Busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<std::future<ExecResponse>> Queued;
  for (unsigned I = 0; I != 5; ++I) {
    ExecRequest Req;
    Req.Workload = workloads::workloadNames().front();
    Queued.push_back(Sched.submit(Req));
  }

  // Cancel: the in-flight spin completes (on its deadline), the five
  // queued requests reject typed — and are reported by the return value.
  EXPECT_EQ(Sched.shutdown(/*FinishQueued=*/false), 5u);
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  for (std::future<ExecResponse> &F : Queued) {
    ExecResponse Resp = F.get();
    EXPECT_EQ(Resp.Status, ExecStatus::ShutDown);
    EXPECT_STREQ(Resp.Detail, "cancelled-queued");
  }

  // Stopped scheduler: immediate typed rejection, idempotent shutdown.
  ExecResponse Late = Sched.submit(Busy).get();
  EXPECT_EQ(Late.Status, ExecStatus::ShutDown);
  EXPECT_STREQ(Late.Detail, "scheduler-stopped");
  EXPECT_EQ(Sched.shutdown(false), 0u);
  EXPECT_EQ(Sched.fleet().stats().get("serve.rejected.shutdown"), 6u);
}

TEST(ExecutionScheduler, DeadlineExceededIsTyped) {
  ExecutionScheduler Sched(quickConfig(1, 4));
  ExecRequest Req;
  Req.Image = spinImage();
  Req.DeadlineMicros = 50'000;
  ExecResponse Resp = Sched.submit(Req).get();
  EXPECT_EQ(Resp.Status, ExecStatus::DeadlineExceeded);
  EXPECT_STREQ(Resp.Detail, "wall-deadline");
  EXPECT_GT(Resp.GuestInsts, 0u);
  // The deadline is measured from submit (queueing counts against it), so
  // the dispatch-to-abandonment wall time may fall marginally short of
  // the full 50ms by the submit-to-dispatch latency.
  EXPECT_GE(Resp.WallMicros, 40'000.0);
}

TEST(ExecutionScheduler, InstructionCeilingIsTyped) {
  ExecutionScheduler Sched(quickConfig(1, 4));
  ExecRequest Req;
  Req.Image = spinImage();
  Req.MaxGuestInsts = 10'000;
  ExecResponse Resp = Sched.submit(Req).get();
  EXPECT_EQ(Resp.Status, ExecStatus::InstBudgetExceeded);
  EXPECT_STREQ(Resp.Detail, "guest-inst-ceiling");
  EXPECT_GE(Resp.GuestInsts, 10'000u);
}

TEST(ExecutionScheduler, BadImagesRejectWithReasons) {
  ExecutionScheduler Sched(quickConfig(1, 4));

  ExecRequest Unknown;
  Unknown.Workload = "no-such-workload";
  ExecResponse R1 = Sched.submit(Unknown).get();
  EXPECT_EQ(R1.Status, ExecStatus::BadImage);
  EXPECT_STREQ(R1.Detail, "unknown-workload");

  ExecRequest BadPrint;
  BadPrint.ImageFingerprint = 0xDEAD;
  ExecResponse R2 = Sched.submit(BadPrint).get();
  EXPECT_EQ(R2.Status, ExecStatus::BadImage);
  EXPECT_STREQ(R2.Detail, "unknown-fingerprint");

  ExecRequest Empty;
  ExecResponse R3 = Sched.submit(Empty).get();
  EXPECT_EQ(R3.Status, ExecStatus::BadImage);
  EXPECT_STREQ(R3.Detail, "no-image");

  ExecRequest Misaligned;
  Misaligned.Image = spinImage();
  Misaligned.Image.EntryPc += 2;
  ExecResponse R4 = Sched.submit(Misaligned).get();
  EXPECT_EQ(R4.Status, ExecStatus::BadImage);
  EXPECT_STREQ(R4.Detail, "entry-misaligned");

  ExecRequest Unmapped;
  Unmapped.Image = spinImage();
  Unmapped.Image.EntryPc += 0x100000;
  ExecResponse R5 = Sched.submit(Unmapped).get();
  EXPECT_EQ(R5.Status, ExecStatus::BadImage);
  EXPECT_STREQ(R5.Detail, "entry-unmapped");

  EXPECT_EQ(Sched.fleet().stats().get("serve.rejected.bad-image"), 5u);
}

TEST(ExecutionScheduler, GuestTrapIsTypedWithRecoveredState) {
  ExecutionScheduler Sched(quickConfig(1, 4));
  ExecRequest Req;
  Req.Image = trapImage();
  ExecResponse Resp = Sched.submit(Req).get();
  EXPECT_EQ(Resp.Status, ExecStatus::Trapped);
  EXPECT_STREQ(Resp.Detail, "guest-trap");
  // Precise state: r1 holds the bad address the guest loaded from.
  EXPECT_EQ(Resp.Arch.readGpr(1), 0x40000000u);
  EXPECT_EQ(Sched.fleet().stats().get("serve.trapped"), 1u);
}

TEST(ExecutionScheduler, TenantBudgetsResolvePerRequest) {
  // Same pressure point as VmCachePressureTest: guarantees eviction.
  constexpr uint64_t TinyBudget = 128;
  FleetConfig Config = quickConfig(1, 8);
  Config.TenantCacheBytes["tiny"] = TinyBudget;
  ExecutionScheduler Sched(Config);
  Sched.fleet().registerWorkloads();
  const std::string W = workloads::workloadNames().front();

  ExecRequest Tiny;
  Tiny.Workload = W;
  Tiny.Tenant = "tiny";
  ExecResponse TinyResp = Sched.submit(Tiny).get();
  ASSERT_EQ(TinyResp.Status, ExecStatus::Ok) << TinyResp.Detail;
  EXPECT_LE(TinyResp.Stats.get("cache.budget_high_water"), TinyBudget);
  EXPECT_GT(TinyResp.Stats.get("cache.evictions"), 0u);

  // Unlisted tenant: fleet default (unbounded) — no eviction pressure.
  ExecRequest Free;
  Free.Workload = W;
  Free.Tenant = "unlisted";
  ExecResponse FreeResp = Sched.submit(Free).get();
  ASSERT_EQ(FreeResp.Status, ExecStatus::Ok);
  EXPECT_EQ(FreeResp.Stats.get("cache.evictions"), 0u);

  // Per-request override beats the tenant budget.
  ExecRequest Override;
  Override.Workload = W;
  Override.Tenant = "tiny";
  Override.CodeCacheBytes = 0; // Unbounded for this one request.
  ExecResponse OverrideResp = Sched.submit(Override).get();
  ASSERT_EQ(OverrideResp.Status, ExecStatus::Ok);
  EXPECT_EQ(OverrideResp.Stats.get("cache.evictions"), 0u);

  // Identical results regardless of budget.
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(TinyResp.Arch.readGpr(Reg), FreeResp.Arch.readGpr(Reg))
        << "r" << Reg;
}

TEST(ExecutionScheduler, ConcurrentSubmittersAllFulfilled) {
  ExecutionScheduler Sched(quickConfig(/*Workers=*/4, /*QueueDepth=*/64));
  Sched.fleet().registerWorkloads();
  const std::vector<std::string> Names = workloads::workloadNames();

  constexpr unsigned Submitters = 4;
  constexpr unsigned Each = 12;
  std::atomic<unsigned> Ok{0}, Full{0}, Other{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Submitters; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != Each; ++I) {
        ExecRequest Req;
        Req.Workload = Names[(T * Each + I) % Names.size()];
        ExecResponse Resp = Sched.submit(Req).get();
        if (Resp.Status == ExecStatus::Ok)
          Ok.fetch_add(1);
        else if (Resp.Status == ExecStatus::QueueFull)
          Full.fetch_add(1);
        else
          Other.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  // Every submission got exactly one response; nothing hung, nothing
  // leaked, and the only legal rejection under load is queue-full.
  EXPECT_EQ(Ok.load() + Full.load(), Submitters * Each);
  EXPECT_EQ(Other.load(), 0u);
  EXPECT_GT(Ok.load(), 0u);
  StatisticSet S = Sched.fleet().stats();
  EXPECT_EQ(S.get("serve.requests"), Submitters * Each);
  EXPECT_EQ(S.get("serve.ok"), Ok.load());
}

TEST(ExecutionScheduler, DestructorCancelsCleanly) {
  // Scope exit mid-flight: the destructor must fulfil every promise.
  std::future<ExecResponse> BusyF, QueuedF;
  {
    ExecutionScheduler Sched(quickConfig(1, 4));
    Sched.fleet().registerWorkloads();
    ExecRequest Busy;
    Busy.Image = spinImage();
    Busy.DeadlineMicros = 200'000;
    BusyF = Sched.submit(Busy);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ExecRequest Req;
    Req.Workload = workloads::workloadNames().front();
    QueuedF = Sched.submit(Req);
  }
  EXPECT_EQ(BusyF.get().Status, ExecStatus::DeadlineExceeded);
  EXPECT_EQ(QueuedF.get().Status, ExecStatus::ShutDown);
}
