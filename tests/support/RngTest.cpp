//===- tests/support/RngTest.cpp ------------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I != 16; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(13), 13u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, ZeroSeedIsValid) {
  Rng R(0);
  // xorshift must never get stuck at zero state.
  EXPECT_NE(R.next(), 0u);
  EXPECT_NE(R.next(), R.next());
}

TEST(Rng, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I != 64; ++I) {
    EXPECT_FALSE(R.nextChance(0, 10));
    EXPECT_TRUE(R.nextChance(10, 10));
  }
}

TEST(Rng, RoughUniformity) {
  Rng R(123);
  int Buckets[4] = {0, 0, 0, 0};
  for (int I = 0; I != 4000; ++I)
    ++Buckets[R.nextBelow(4)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 800);
    EXPECT_LT(Count, 1200);
  }
}
