//===- tests/support/TablePrinterTest.cpp ---------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.beginRow();
  T.cell("x");
  T.cellInt(12345);
  T.beginRow();
  T.cell("longer");
  T.cellInt(7);
  std::string Out = T.toString();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("x       12345"), std::string::npos);
  EXPECT_NE(Out.find("longer      7"), std::string::npos);
}

TEST(TablePrinter, FloatFormatting) {
  EXPECT_EQ(formatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(formatFloat(2.0, 3), "2.000");
  EXPECT_EQ(formatFloat(-0.5, 1), "-0.5");
}

TEST(TablePrinter, Csv) {
  TablePrinter T({"a", "b"});
  T.beginRow();
  T.cellInt(1);
  T.cellFloat(0.5, 1);
  EXPECT_EQ(T.toCsv(), "a,b\n1,0.5\n");
}

TEST(TablePrinter, MissingCellsRenderEmpty) {
  TablePrinter T({"a", "b", "c"});
  T.beginRow();
  T.cell("only");
  std::string Out = T.toString();
  EXPECT_NE(Out.find("only"), std::string::npos);
}
