//===- tests/support/StatisticsTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(Statistics, AddAndGet) {
  StatisticSet S;
  EXPECT_EQ(S.get("a"), 0u);
  EXPECT_FALSE(S.has("a"));
  S.add("a");
  S.add("a", 4);
  EXPECT_EQ(S.get("a"), 5u);
  EXPECT_TRUE(S.has("a"));
}

TEST(Statistics, SetOverwrites) {
  StatisticSet S;
  S.add("x", 10);
  S.set("x", 3);
  EXPECT_EQ(S.get("x"), 3u);
}

TEST(Statistics, PrefixQuery) {
  StatisticSet S;
  S.add("dbt.fragments", 2);
  S.add("dbt.uops", 7);
  S.add("vm.segments", 1);
  auto Result = S.getWithPrefix("dbt.");
  ASSERT_EQ(Result.size(), 2u);
  EXPECT_EQ(Result[0].first, "dbt.fragments");
  EXPECT_EQ(Result[1].first, "dbt.uops");
}

TEST(Statistics, Merge) {
  StatisticSet A, B;
  A.add("n", 1);
  B.add("n", 2);
  B.add("m", 5);
  A.mergeFrom(B);
  EXPECT_EQ(A.get("n"), 3u);
  EXPECT_EQ(A.get("m"), 5u);
}

TEST(Statistics, ToStringSorted) {
  StatisticSet S;
  S.add("b", 2);
  S.add("a", 1);
  EXPECT_EQ(S.toString(), "a = 1\nb = 2\n");
}
