//===- tests/support/FixedRingTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FixedRing.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(FixedRing, StartsEmpty) {
  FixedRing<int> Ring(4);
  EXPECT_TRUE(Ring.empty());
  EXPECT_FALSE(Ring.full());
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.capacity(), 4u);
}

TEST(FixedRing, PushBackEvictFifoOrder) {
  FixedRing<int> Ring(3);
  Ring.pushBackEvict(1);
  Ring.pushBackEvict(2);
  Ring.pushBackEvict(3);
  EXPECT_TRUE(Ring.full());
  EXPECT_EQ(Ring.front(), 1);
  EXPECT_EQ(Ring.back(), 3);
  Ring.popFront();
  EXPECT_EQ(Ring.front(), 2);
  EXPECT_EQ(Ring.size(), 2u);
}

TEST(FixedRing, EvictsOldestWhenFull) {
  FixedRing<int> Ring(3);
  for (int I = 1; I <= 5; ++I)
    Ring.pushBackEvict(I);
  // 1 and 2 were evicted.
  EXPECT_EQ(Ring.size(), 3u);
  EXPECT_EQ(Ring.front(), 3);
  EXPECT_EQ(Ring.back(), 5);
}

TEST(FixedRing, PopBackActsAsStack) {
  FixedRing<int> Ring(4);
  Ring.pushBackEvict(10);
  Ring.pushBackEvict(20);
  Ring.pushBackEvict(30);
  EXPECT_EQ(Ring.back(), 30);
  Ring.popBack();
  EXPECT_EQ(Ring.back(), 20);
  Ring.popBack();
  EXPECT_EQ(Ring.back(), 10);
  Ring.popBack();
  EXPECT_TRUE(Ring.empty());
}

TEST(FixedRing, StackOverflowForgetsDeepestFrame) {
  // The dual-RAS use: push beyond capacity, then pop everything back —
  // the oldest (deepest) entries are the ones lost.
  FixedRing<int> Ring(3);
  for (int I = 1; I <= 5; ++I)
    Ring.pushBackEvict(I);
  EXPECT_EQ(Ring.back(), 5);
  Ring.popBack();
  EXPECT_EQ(Ring.back(), 4);
  Ring.popBack();
  EXPECT_EQ(Ring.back(), 3);
  Ring.popBack();
  EXPECT_TRUE(Ring.empty());
}

TEST(FixedRing, ClearResets) {
  FixedRing<int> Ring(2);
  Ring.pushBackEvict(1);
  Ring.pushBackEvict(2);
  Ring.clear();
  EXPECT_TRUE(Ring.empty());
  Ring.pushBackEvict(7);
  EXPECT_EQ(Ring.front(), 7);
  EXPECT_EQ(Ring.back(), 7);
}

TEST(FixedRing, WrapsManyTimes) {
  FixedRing<int> Ring(4);
  for (int I = 0; I != 1000; ++I) {
    Ring.pushBackEvict(I);
    if (I % 3 == 0 && !Ring.empty())
      Ring.popFront();
  }
  // Contents are the newest entries in order.
  ASSERT_FALSE(Ring.empty());
  int Prev = Ring.front();
  Ring.popFront();
  while (!Ring.empty()) {
    EXPECT_GT(Ring.front(), Prev);
    Prev = Ring.front();
    Ring.popFront();
  }
  EXPECT_EQ(Prev, 999);
}

TEST(FixedRing, ZeroCapacityClampsToOne) {
  FixedRing<int> Ring(0);
  EXPECT_EQ(Ring.capacity(), 1u);
  Ring.pushBackEvict(1);
  Ring.pushBackEvict(2);
  EXPECT_EQ(Ring.size(), 1u);
  EXPECT_EQ(Ring.front(), 2);
}
