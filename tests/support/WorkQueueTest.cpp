//===- tests/support/WorkQueueTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/WorkQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

using namespace ildp;

TEST(WorkQueue, PushPopSingleThread) {
  WorkQueue<int> Q(4);
  EXPECT_TRUE(Q.push(1));
  EXPECT_TRUE(Q.push(2));
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.tryPop(), std::nullopt);
}

TEST(WorkQueue, PushBlocksUntilPopWhenFull) {
  WorkQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::atomic<bool> Pushed{false};
  std::thread Producer([&] {
    EXPECT_TRUE(Q.push(2)); // Blocks until the consumer pops.
    Pushed.store(true);
  });
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  Producer.join();
  EXPECT_TRUE(Pushed.load());
}

TEST(WorkQueue, CloseDrainsRemainingItems) {
  WorkQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  Q.close();
  EXPECT_FALSE(Q.push(3)); // Rejected after close.
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.pop(), std::nullopt); // Drained and closed: exhausted.
}

TEST(WorkQueue, CloseAndClearCancelsQueuedItems) {
  WorkQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  ASSERT_TRUE(Q.push(3));
  EXPECT_EQ(Q.closeAndClear(), 3u);
  EXPECT_EQ(Q.pop(), std::nullopt);
  EXPECT_TRUE(Q.closed());
}

TEST(WorkQueue, CloseWakesBlockedConsumer) {
  WorkQueue<int> Q(4);
  std::thread Consumer([&] { EXPECT_EQ(Q.pop(), std::nullopt); });
  Q.close();
  Consumer.join();
}

TEST(WorkQueue, CloseWakesBlockedProducer) {
  WorkQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::thread Producer([&] { EXPECT_FALSE(Q.push(2)); });
  Q.closeAndClear();
  Producer.join();
}

TEST(WorkQueue, MultiProducerMultiConsumerDeliversEverything) {
  constexpr int Producers = 4;
  constexpr int Consumers = 4;
  constexpr int PerProducer = 2000;
  WorkQueue<int> Q(16);

  std::atomic<long long> Sum{0};
  std::atomic<int> Received{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      while (std::optional<int> Item = Q.pop()) {
        Sum.fetch_add(*Item);
        Received.fetch_add(1);
      }
    });
  for (int P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I)
        EXPECT_TRUE(Q.push(P * PerProducer + I));
    });

  // Join producers (the back half of Threads), then close to release the
  // consumers once the queue drains.
  for (int P = 0; P != Producers; ++P)
    Threads[size_t(Consumers + P)].join();
  Q.close();
  for (int C = 0; C != Consumers; ++C)
    Threads[size_t(C)].join();

  constexpr long long Total = Producers * PerProducer;
  EXPECT_EQ(Received.load(), Total);
  EXPECT_EQ(Sum.load(), Total * (Total - 1) / 2);
}

//===----------------------------------------------------------------------===//
// MultiLaneQueue: independently bounded priority lanes drained by
// weighted-deficit round-robin.
//===----------------------------------------------------------------------===//

TEST(MultiLaneQueue, LaneBoundsAreIndependent) {
  MultiLaneQueue<int> Q({2, 1, 1}, {1, 1, 1});
  int V = 0;
  EXPECT_TRUE(Q.tryPush(0, V));
  EXPECT_TRUE(Q.tryPush(0, V));
  EXPECT_FALSE(Q.tryPush(0, V)); // Lane 0 full...
  EXPECT_TRUE(Q.tryPush(1, V));  // ...but lane 1 still has room.
  EXPECT_FALSE(Q.tryPush(1, V));
  EXPECT_TRUE(Q.tryPush(2, V));
  EXPECT_EQ(Q.size(), 4u);
  EXPECT_EQ(Q.laneSize(0), 2u);
  EXPECT_EQ(Q.laneSize(1), 1u);
}

TEST(MultiLaneQueue, FailedTryPushLeavesItemUntouched) {
  MultiLaneQueue<std::string> Q({1}, {1});
  std::string A = "first", B = "second";
  EXPECT_TRUE(Q.tryPush(0, A));
  EXPECT_FALSE(Q.tryPush(0, B));
  EXPECT_EQ(B, "second"); // Rejected item stays with the caller.
  Q.close();
  EXPECT_FALSE(Q.tryPush(0, B)); // Closed queue also refuses...
  EXPECT_EQ(B, "second");        // ...without consuming.
}

TEST(MultiLaneQueue, WeightedDeficitServesLanesInWeightRatio) {
  // Weights 3:1 with both lanes saturated: each refill round serves three
  // from lane 0 then one from lane 1, deterministically.
  MultiLaneQueue<int> Q({16, 16}, {3, 1});
  int V;
  for (int I = 0; I != 6; ++I) {
    V = I;
    ASSERT_TRUE(Q.tryPush(0, V));
  }
  for (int I = 0; I != 2; ++I) {
    V = 100 + I;
    ASSERT_TRUE(Q.tryPush(1, V));
  }
  std::vector<unsigned> Lanes;
  for (int I = 0; I != 8; ++I) {
    auto P = Q.tryPop();
    ASSERT_TRUE(P.has_value());
    Lanes.push_back(P->Lane);
  }
  EXPECT_EQ(Lanes, (std::vector<unsigned>{0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(MultiLaneQueue, IdleHighPriorityLaneCostsNothing) {
  // Only the low-weight lane has work: it is served back to back, not
  // throttled to its share of an idle mix.
  MultiLaneQueue<int> Q({8, 8}, {7, 1});
  int V;
  for (int I = 0; I != 4; ++I) {
    V = I;
    ASSERT_TRUE(Q.tryPush(1, V));
  }
  for (int I = 0; I != 4; ++I) {
    auto P = Q.tryPop();
    ASSERT_TRUE(P.has_value());
    EXPECT_EQ(P->Lane, 1u);
    EXPECT_EQ(P->Item, I);
  }
}

TEST(MultiLaneQueue, LowPriorityLaneNeverStarves) {
  // Keep lane 0 saturated while draining: lane 1 must still receive its
  // one-per-round grant.
  MultiLaneQueue<int> Q({64, 64}, {8, 1});
  int V = 0;
  for (int I = 0; I != 32; ++I)
    ASSERT_TRUE(Q.tryPush(0, V));
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Q.tryPush(1, V));
  unsigned Lane1Seen = 0;
  for (int I = 0; I != 27; ++I) { // Three full rounds of 9.
    auto P = Q.tryPop();
    ASSERT_TRUE(P.has_value());
    if (P->Lane == 1)
      ++Lane1Seen;
  }
  EXPECT_EQ(Lane1Seen, 3u);
}

TEST(MultiLaneQueue, CloseDrainsThenReportsExhaustion) {
  MultiLaneQueue<int> Q({4, 4}, {1, 1});
  int V = 7;
  ASSERT_TRUE(Q.tryPush(1, V));
  Q.close();
  auto P = Q.pop();
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Lane, 1u);
  EXPECT_EQ(P->Item, 7);
  EXPECT_EQ(Q.pop(), std::nullopt);
  EXPECT_TRUE(Q.closed());
}

TEST(MultiLaneQueue, CloseWakesBlockedConsumer) {
  MultiLaneQueue<int> Q({2}, {1});
  std::thread Consumer([&] { EXPECT_EQ(Q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join();
}

TEST(MultiLaneQueue, ConcurrentLanesDeliverEverythingExactlyOnce) {
  constexpr int Producers = 3; // One per lane.
  constexpr int Consumers = 3;
  constexpr int PerProducer = 2000;
  MultiLaneQueue<int> Q({16, 16, 16}, {8, 3, 1});

  std::atomic<long long> Sum{0};
  std::atomic<int> Received{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      while (auto P = Q.pop()) {
        Sum.fetch_add(P->Item);
        Received.fetch_add(1);
      }
    });
  for (int L = 0; L != Producers; ++L)
    Threads.emplace_back([&, L] {
      for (int I = 0; I != PerProducer; ++I) {
        int V = L * PerProducer + I;
        while (!Q.tryPush(unsigned(L), V)) // Spin: bounded lane, open queue.
          std::this_thread::yield();
      }
    });

  for (int L = 0; L != Producers; ++L)
    Threads[size_t(Consumers + L)].join();
  Q.close();
  for (int C = 0; C != Consumers; ++C)
    Threads[size_t(C)].join();

  constexpr long long Total = Producers * PerProducer;
  EXPECT_EQ(Received.load(), Total);
  EXPECT_EQ(Sum.load(), Total * (Total - 1) / 2);
}
