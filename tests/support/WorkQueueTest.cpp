//===- tests/support/WorkQueueTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/WorkQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace ildp;

TEST(WorkQueue, PushPopSingleThread) {
  WorkQueue<int> Q(4);
  EXPECT_TRUE(Q.push(1));
  EXPECT_TRUE(Q.push(2));
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.tryPop(), std::nullopt);
}

TEST(WorkQueue, PushBlocksUntilPopWhenFull) {
  WorkQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::atomic<bool> Pushed{false};
  std::thread Producer([&] {
    EXPECT_TRUE(Q.push(2)); // Blocks until the consumer pops.
    Pushed.store(true);
  });
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  Producer.join();
  EXPECT_TRUE(Pushed.load());
}

TEST(WorkQueue, CloseDrainsRemainingItems) {
  WorkQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  Q.close();
  EXPECT_FALSE(Q.push(3)); // Rejected after close.
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.pop(), std::nullopt); // Drained and closed: exhausted.
}

TEST(WorkQueue, CloseAndClearCancelsQueuedItems) {
  WorkQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  ASSERT_TRUE(Q.push(3));
  EXPECT_EQ(Q.closeAndClear(), 3u);
  EXPECT_EQ(Q.pop(), std::nullopt);
  EXPECT_TRUE(Q.closed());
}

TEST(WorkQueue, CloseWakesBlockedConsumer) {
  WorkQueue<int> Q(4);
  std::thread Consumer([&] { EXPECT_EQ(Q.pop(), std::nullopt); });
  Q.close();
  Consumer.join();
}

TEST(WorkQueue, CloseWakesBlockedProducer) {
  WorkQueue<int> Q(1);
  ASSERT_TRUE(Q.push(1));
  std::thread Producer([&] { EXPECT_FALSE(Q.push(2)); });
  Q.closeAndClear();
  Producer.join();
}

TEST(WorkQueue, MultiProducerMultiConsumerDeliversEverything) {
  constexpr int Producers = 4;
  constexpr int Consumers = 4;
  constexpr int PerProducer = 2000;
  WorkQueue<int> Q(16);

  std::atomic<long long> Sum{0};
  std::atomic<int> Received{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      while (std::optional<int> Item = Q.pop()) {
        Sum.fetch_add(*Item);
        Received.fetch_add(1);
      }
    });
  for (int P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I)
        EXPECT_TRUE(Q.push(P * PerProducer + I));
    });

  // Join producers (the back half of Threads), then close to release the
  // consumers once the queue drains.
  for (int P = 0; P != Producers; ++P)
    Threads[size_t(Consumers + P)].join();
  Q.close();
  for (int C = 0; C != Consumers; ++C)
    Threads[size_t(C)].join();

  constexpr long long Total = Producers * PerProducer;
  EXPECT_EQ(Received.load(), Total);
  EXPECT_EQ(Sum.load(), Total * (Total - 1) / 2);
}
