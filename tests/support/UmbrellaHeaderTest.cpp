//===- tests/support/UmbrellaHeaderTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The umbrella header must compile standalone and expose the whole API.
///
//===----------------------------------------------------------------------===//

#include "include/ildp/ildp.h"

#include <gtest/gtest.h>

TEST(UmbrellaHeader, ExposesTheApi) {
  // Touch one symbol per layer to prove visibility.
  EXPECT_EQ(ildp::alpha::getMnemonic(ildp::alpha::Opcode::ADDQ),
            std::string("addq"));
  EXPECT_EQ(ildp::iisa::getKindName(ildp::iisa::IKind::CondExit),
            std::string("cond_exit"));
  EXPECT_EQ(ildp::dbt::getChainPolicyName(ildp::dbt::ChainPolicy::SwPredRas),
            std::string("sw_pred.ras"));
  ildp::uarch::IldpParams Params;
  EXPECT_EQ(Params.NumPEs, 8u);
  EXPECT_EQ(ildp::workloads::workloadNames().size(), 12u);
}
