//===- tests/support/BitUtilTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitUtil.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(BitUtil, ExtractBits) {
  EXPECT_EQ(extractBits(0xDEADBEEF, 0, 8), 0xEFu);
  EXPECT_EQ(extractBits(0xDEADBEEF, 8, 8), 0xBEu);
  EXPECT_EQ(extractBits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(extractBits(~uint64_t(0), 0, 64), ~uint64_t(0));
  EXPECT_EQ(extractBits(0x8000000000000000ull, 63, 1), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xFFFF, 16), -1);
  EXPECT_EQ(signExtend(0x1FFFFF, 21), -1);
  EXPECT_EQ(signExtend(0x0FFFFF, 21), 0x0FFFFF);
  EXPECT_EQ(signExtend(0, 1), 0);
  EXPECT_EQ(signExtend(1, 1), -1);
  // Bits above the field are ignored.
  EXPECT_EQ(signExtend(0xF00F, 8), 15);
}

TEST(BitUtil, FitsSigned) {
  EXPECT_TRUE(fitsSigned(0, 1));
  EXPECT_TRUE(fitsSigned(-1, 1));
  EXPECT_FALSE(fitsSigned(1, 1));
  EXPECT_TRUE(fitsSigned(32767, 16));
  EXPECT_FALSE(fitsSigned(32768, 16));
  EXPECT_TRUE(fitsSigned(-32768, 16));
  EXPECT_FALSE(fitsSigned(-32769, 16));
}

TEST(BitUtil, FitsUnsigned) {
  EXPECT_TRUE(fitsUnsigned(255, 8));
  EXPECT_FALSE(fitsUnsigned(256, 8));
  EXPECT_TRUE(fitsUnsigned(~uint64_t(0), 64));
}

TEST(BitUtil, PowerOfTwo) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(1024));
  EXPECT_FALSE(isPowerOf2(1023));
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(1024), 10u);
  EXPECT_EQ(log2Floor(1025), 10u);
}

TEST(BitUtil, SextLongword) {
  EXPECT_EQ(sextLongword(0x00000000FFFFFFFFull), ~uint64_t(0));
  EXPECT_EQ(sextLongword(0x000000007FFFFFFFull), 0x7FFFFFFFull);
  EXPECT_EQ(sextLongword(0xABCDEF0080000000ull), 0xFFFFFFFF80000000ull);
}
