//===- tests/support/CrashInjectorTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-point scheduler WITHOUT the crash: naming, spec parsing
/// (including the all-or-nothing rejection of malformed schedules), hit
/// counting, and firing decisions probed via wouldCrashNext(). Actually
/// dying at a crash point is covered end-to-end by ildp-crashtest, which
/// kills real child processes.
///
//===----------------------------------------------------------------------===//

#include "support/CrashInjector.h"

#include <gtest/gtest.h>
#include <string>

using namespace ildp;
using namespace ildp::support;

TEST(CrashInjector, PointNamesRoundTrip) {
  for (unsigned I = 0; I != NumCrashPoints; ++I) {
    CrashPoint P = CrashPoint(I);
    CrashPoint Parsed;
    ASSERT_TRUE(parseCrashPointName(getCrashPointName(P), Parsed))
        << getCrashPointName(P);
    EXPECT_EQ(Parsed, P);
  }
  CrashPoint Unchanged = CrashPoint::MidRequest;
  EXPECT_FALSE(parseCrashPointName("no_such_point", Unchanged));
  EXPECT_EQ(Unchanged, CrashPoint::MidRequest);
}

TEST(CrashInjector, UnarmedCountsButNeverFires) {
  CrashInjector I;
  EXPECT_FALSE(I.armed());
  for (int N = 0; N != 5; ++N) {
    EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidTmpWrite));
    I.maybeCrash(CrashPoint::MidTmpWrite); // Must return, not exit.
  }
  EXPECT_EQ(I.hitCount(CrashPoint::MidTmpWrite), 5u);
}

TEST(CrashInjector, OnHitFiresExactlyOnTheNth) {
  CrashInjector I;
  I.armOnHit(CrashPoint::MidMergeRead, 3);
  EXPECT_TRUE(I.armed());
  // Hits 1 and 2 pass; the injector would kill the process on hit 3.
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidMergeRead));
  I.maybeCrash(CrashPoint::MidMergeRead);
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidMergeRead));
  I.maybeCrash(CrashPoint::MidMergeRead);
  EXPECT_TRUE(I.wouldCrashNext(CrashPoint::MidMergeRead));
  // Other points are independent.
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidTmpWrite));
}

TEST(CrashInjector, DisarmStopsFiringAndKeepsCounts) {
  CrashInjector I;
  I.armOnHit(CrashPoint::MidRequest, 1);
  EXPECT_TRUE(I.wouldCrashNext(CrashPoint::MidRequest));
  I.disarm(CrashPoint::MidRequest);
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidRequest));
  I.maybeCrash(CrashPoint::MidRequest);
  EXPECT_EQ(I.hitCount(CrashPoint::MidRequest), 1u);
}

TEST(CrashInjector, SpecParsesOnHitAlwaysAndRandom) {
  CrashInjector I;
  ASSERT_TRUE(I.armFromSpec(
      "post_tmp_pre_rename=1,mid_request=3,mid_merge_read=always"));
  EXPECT_TRUE(I.wouldCrashNext(CrashPoint::PostTmpPreRename)); // Nth = 1.
  EXPECT_TRUE(I.wouldCrashNext(CrashPoint::MidMergeRead));     // always.
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidRequest));      // Nth = 3.
  EXPECT_FALSE(I.wouldCrashNext(CrashPoint::MidTmpWrite));     // Unarmed.

  CrashInjector R;
  ASSERT_TRUE(R.armFromSpec("mid_tmp_write=random:42/1/2"));
  EXPECT_TRUE(R.armed());
}

TEST(CrashInjector, MalformedSpecIsAllOrNothing) {
  // A typo in one clause must not arm the others: a chaos schedule that
  // silently half-applies reports green coverage it never exercised.
  CrashInjector I;
  EXPECT_FALSE(I.armFromSpec("mid_request=1,no_such_point=2"));
  EXPECT_FALSE(I.armed());
  EXPECT_FALSE(I.armFromSpec("mid_request="));
  EXPECT_FALSE(I.armFromSpec("mid_request=0"));
  EXPECT_FALSE(I.armFromSpec("mid_request"));
  EXPECT_FALSE(I.armFromSpec("mid_request=random:1/2"));
  EXPECT_FALSE(I.armFromSpec("mid_request=random:1/2/0"));
  EXPECT_FALSE(I.armed());
  // And an empty spec arms nothing but is not an error.
  EXPECT_TRUE(I.armFromSpec(""));
  EXPECT_FALSE(I.armed());
}

TEST(CrashInjector, RandomScheduleIsDeterministicPerSeed) {
  // Same seed, same decisions, hit for hit; a different seed gives a
  // different (but still reproducible) pattern at 1/2 probability.
  auto Pattern = [](uint64_t Seed) {
    CrashInjector I;
    I.armRandom(CrashPoint::MidRequest, Seed, 1, 2);
    std::string Bits;
    for (int N = 0; N != 64; ++N) {
      Bits += I.wouldCrashNext(CrashPoint::MidRequest) ? '1' : '0';
      I.disarm(CrashPoint::MidRequest);
      I.maybeCrash(CrashPoint::MidRequest); // Advance the hit counter.
      I.armRandom(CrashPoint::MidRequest, Seed, 1, 2);
    }
    return Bits;
  };
  std::string A = Pattern(7), B = Pattern(7), C = Pattern(8);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  // At 1/2 the pattern actually mixes fires and passes.
  EXPECT_NE(A.find('1'), std::string::npos);
  EXPECT_NE(A.find('0'), std::string::npos);
}

TEST(CrashInjector, ZeroProbabilityNeverWouldFire) {
  CrashInjector I;
  I.armRandom(CrashPoint::PostRenamePreUnlock, 1, 0, 10);
  for (int N = 0; N != 32; ++N) {
    EXPECT_FALSE(I.wouldCrashNext(CrashPoint::PostRenamePreUnlock));
    I.disarm(CrashPoint::PostRenamePreUnlock);
    I.maybeCrash(CrashPoint::PostRenamePreUnlock);
    I.armRandom(CrashPoint::PostRenamePreUnlock, 1, 0, 10);
  }
}
