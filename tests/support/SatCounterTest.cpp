//===- tests/support/SatCounterTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SatCounter.h"

#include <gtest/gtest.h>

using namespace ildp;

TEST(SatCounter, SaturatesHigh) {
  SatCounter C(2, 0);
  for (int I = 0; I != 10; ++I)
    C.increment();
  EXPECT_EQ(C.value(), 3u);
  EXPECT_TRUE(C.predictTaken());
}

TEST(SatCounter, SaturatesLow) {
  SatCounter C(2, 3);
  for (int I = 0; I != 10; ++I)
    C.decrement();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_FALSE(C.predictTaken());
}

TEST(SatCounter, HysteresisBehaviour) {
  // Classic 2-bit counter: one stray not-taken from strongly-taken does
  // not flip the prediction.
  SatCounter C(2, 3);
  C.update(false);
  EXPECT_TRUE(C.predictTaken());
  C.update(false);
  EXPECT_FALSE(C.predictTaken());
}

TEST(SatCounter, OneBitFlipsImmediately) {
  SatCounter C(1, 0);
  EXPECT_FALSE(C.predictTaken());
  C.update(true);
  EXPECT_TRUE(C.predictTaken());
  C.update(false);
  EXPECT_FALSE(C.predictTaken());
}
