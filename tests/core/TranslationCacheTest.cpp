//===- tests/core/TranslationCacheTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/TranslationCache.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

/// Minimal fragment: set_vpc_base + branch to \p Target.
Fragment makeFragment(uint64_t Entry, uint64_t Target, bool Pending) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = Pending;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6};
  F.BodyBytes = 10;
  F.Exits.push_back({1, Target, Pending});
  F.SourceVAddrs = {Entry};
  return F;
}

} // namespace

TEST(TranslationCache, InstallAndLookup) {
  TranslationCache TC;
  TC.install(makeFragment(0x1000, 0x2000, true));
  EXPECT_TRUE(TC.contains(0x1000));
  EXPECT_FALSE(TC.contains(0x2000));
  ASSERT_NE(TC.lookup(0x1000), nullptr);
  EXPECT_EQ(TC.lookup(0x1000)->EntryVAddr, 0x1000u);
  EXPECT_EQ(TC.fragmentCount(), 1u);
}

TEST(TranslationCache, AssignsDistinctIBases) {
  TranslationCache TC;
  Fragment &A = TC.install(makeFragment(0x1000, 0x2000, true));
  Fragment &B = TC.install(makeFragment(0x3000, 0x4000, true));
  EXPECT_GE(A.IBase, TranslationCache::TCacheBase);
  EXPECT_GE(B.IBase, A.IBase + A.BodyBytes);
  EXPECT_EQ(TC.totalBodyBytes(), 20u);
}

TEST(TranslationCache, PatchesPendingExitsOnInstall) {
  TranslationCache TC;
  Fragment &A = TC.install(makeFragment(0x1000, 0x2000, true));
  EXPECT_TRUE(A.Exits[0].Pending);
  EXPECT_TRUE(A.Body[1].ToTranslator);

  TC.install(makeFragment(0x2000, 0x1000, true));
  // A's exit to 0x2000 is patched into a chained branch...
  EXPECT_FALSE(A.Exits[0].Pending);
  EXPECT_FALSE(A.Body[1].ToTranslator);
  // ...and the new fragment's exit to (already installed) 0x1000 was
  // resolved at install time.
  EXPECT_FALSE(TC.lookup(0x2000)->Exits[0].Pending);
  EXPECT_EQ(TC.patchCount(), 2u);
}

TEST(TranslationCache, NonPendingExitsUntouched) {
  TranslationCache TC;
  Fragment &A = TC.install(makeFragment(0x1000, 0x1000, false));
  TC.install(makeFragment(0x2000, 0x3000, true));
  EXPECT_FALSE(A.Exits[0].Pending);
  EXPECT_EQ(TC.patchCount(), 0u);
}

TEST(TranslationCache, UniqueSourceInstsDeduplicated) {
  TranslationCache TC;
  Fragment A = makeFragment(0x1000, 0x2000, true);
  A.SourceVAddrs = {0x1000, 0x1004, 0x1008};
  Fragment B = makeFragment(0x1004, 0x2000, true);
  B.SourceVAddrs = {0x1004, 0x1008, 0x100C}; // overlaps A
  TC.install(std::move(A));
  TC.install(std::move(B));
  EXPECT_EQ(TC.uniqueSourceInsts(), 4u);
}

TEST(TranslationCache, ManyPendingExitsToSameTarget) {
  TranslationCache TC;
  Fragment &A = TC.install(makeFragment(0x1000, 0x9000, true));
  Fragment &B = TC.install(makeFragment(0x2000, 0x9000, true));
  Fragment &C = TC.install(makeFragment(0x3000, 0x9000, true));
  TC.install(makeFragment(0x9000, 0x9000, false));
  EXPECT_FALSE(A.Exits[0].Pending);
  EXPECT_FALSE(B.Exits[0].Pending);
  EXPECT_FALSE(C.Exits[0].Pending);
  EXPECT_EQ(TC.patchCount(), 3u);
}

TEST(TranslationCache, InstPcFromOffsets) {
  TranslationCache TC;
  Fragment &A = TC.install(makeFragment(0x1000, 0x2000, true));
  EXPECT_EQ(A.instPc(0), A.IBase);
  EXPECT_EQ(A.instPc(1), A.IBase + 6);
}
