//===- tests/core/RandomProgramTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential property test: random straight-line Alpha programs are
/// recorded, translated with every backend and accumulator budget, and
/// executed through the I-ISA functional executor; the final architected
/// state must be bit-identical to the reference interpreter. This
/// exercises operand resolution, copy insertion, spilling/reloading, and
/// the cmov/memory decompositions under hundreds of random shapes.
///
//===----------------------------------------------------------------------===//

#include "DbtTestUtil.h"

#include "core/CodeGen.h"
#include "iisa/Disasm.h"
#include "iisa/Executor.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::dbt;
using namespace ildp::dbttest;
using Op = Opcode;

namespace {

constexpr uint64_t DataBase = 0x40000;

/// Emits a random but safe straight-line program: arithmetic over r1..r8,
/// loads/stores through r16 (data region), conditional moves, multiplies.
void emitRandomProgram(Assembler &Asm, Rng &Rand, unsigned Length) {
  static const Op AluOps[] = {
      Op::ADDQ, Op::SUBQ,  Op::ADDL,   Op::SUBL,  Op::XOR,
      Op::AND,  Op::BIS,   Op::BIC,    Op::ORNOT, Op::EQV,
      Op::SLL,  Op::SRL,   Op::SRA,    Op::S4ADDQ, Op::S8ADDQ,
      Op::CMPEQ, Op::CMPLT, Op::CMPULE, Op::ZAPNOT, Op::EXTBL,
      Op::MULQ, Op::MULL,  Op::UMULH,  Op::CMPBGE};
  static const Op CmovOps[] = {Op::CMOVEQ, Op::CMOVNE, Op::CMOVLT,
                               Op::CMOVGE, Op::CMOVLBS, Op::CMOVLBC};
  auto Reg = [&] { return uint8_t(1 + Rand.nextBelow(8)); };

  Asm.loadImm(16, int64_t(DataBase));
  for (unsigned R = 1; R <= 8; ++R)
    Asm.loadImm(uint8_t(R), int64_t(Rand.next() & 0xFFFF));

  for (unsigned I = 0; I != Length; ++I) {
    switch (Rand.nextBelow(10)) {
    case 0: { // load
      int32_t Disp = int32_t(Rand.nextBelow(32)) * 8;
      Asm.ldq(Reg(), Disp, 16);
      break;
    }
    case 1: { // store
      int32_t Disp = int32_t(Rand.nextBelow(32)) * 8;
      Asm.stq(Reg(), Disp, 16);
      break;
    }
    case 2: { // conditional move
      Op O = CmovOps[Rand.nextBelow(std::size(CmovOps))];
      Asm.operate(O, Reg(), Reg(), Reg());
      break;
    }
    case 3: // literal operate
      Asm.operatei(AluOps[Rand.nextBelow(std::size(AluOps))], Reg(),
                   uint8_t(Rand.nextBelow(64)), Reg());
      break;
    case 4: // lda (address arithmetic)
      Asm.lda(Reg(), int32_t(Rand.nextInRange(-64, 64)), Reg());
      break;
    case 5: // occasional NOP (must be removed cleanly)
      Asm.nop();
      break;
    default:
      Asm.operate(AluOps[Rand.nextBelow(std::size(AluOps))], Reg(), Reg(),
                  Reg());
      break;
    }
  }
  Asm.halt();
}

struct RandomCase {
  uint64_t Seed;
  iisa::IsaVariant Variant;
  unsigned Accs;
};

class RandomProgramTest : public ::testing::TestWithParam<RandomCase> {};

std::string fragmentDump(const Fragment &Frag) {
  std::string Out;
  for (const auto &Inst : Frag.Body) {
    Out += iisa::disassemble(Inst);
    Out += '\n';
  }
  return Out;
}

} // namespace

TEST_P(RandomProgramTest, TranslatedStateMatchesInterpreter) {
  RandomCase Case = GetParam();
  Rng Rand(Case.Seed);
  unsigned Length = 20 + unsigned(Rand.nextBelow(120));

  Assembler Asm(0x10000);
  emitRandomProgram(Asm, Rand, Length);
  Program Prog(Asm);
  Prog.Mem.mapRegion(DataBase, 0x1000);
  for (unsigned I = 0; I != 64; ++I)
    Prog.Mem.poke64(DataBase + I * 8, Rand.next());

  // Snapshot the initial data region; the reference interpreter run (the
  // recording itself) mutates Prog.Mem, and the translated replay below
  // gets a fresh copy.
  std::vector<uint64_t> InitialData(64);
  for (unsigned I = 0; I != 64; ++I)
    InitialData[I] = Prog.Mem.load(DataBase + I * 8, 8).Value;

  // Record the whole program as one superblock (straight-line).
  Superblock Sb = Prog.record(/*MaxInsts=*/400);
  ASSERT_EQ(Sb.End, SbEndReason::Trap); // ends at HALT
  ArchState RefState = Prog.Interp->state();

  DbtConfig Config;
  Config.Variant = Case.Variant;
  Config.NumAccumulators = Case.Accs;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();

  // Execute the fragment against a fresh copy of the initial environment
  // (the executor never fetches code; fragments are decoded structures).
  GuestMemory Mem2;
  for (unsigned I = 0; I != 64; ++I)
    Mem2.poke64(DataBase + I * 8, InitialData[I]);
  iisa::IExecState State;
  // Entry architected state: registers as of superblock entry — the
  // recording started at the program entry with zeroed registers.
  iisa::IExit Exit = iisa::execute(R.Frag.Body.data(), R.Frag.Body.size(),
                                   State, Mem2, nullptr);
  ASSERT_EQ(Exit.K, iisa::IExit::Kind::Halt) << fragmentDump(R.Frag);

  ArchState Got = State.toArchState();
  Got.Pc = RefState.Pc;
  EXPECT_EQ(Got, RefState) << fragmentDump(R.Frag);

  // Memory images must match too.
  for (unsigned I = 0; I != 64; ++I)
    EXPECT_EQ(Mem2.load(DataBase + I * 8, 8).Value,
              Prog.Mem.load(DataBase + I * 8, 8).Value)
        << "data word " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramTest, ::testing::ValuesIn([] {
      std::vector<RandomCase> Cases;
      for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
        for (auto Variant :
             {iisa::IsaVariant::Basic, iisa::IsaVariant::Modified,
              iisa::IsaVariant::Straight})
          for (unsigned Accs : {2u, 4u, 8u})
            Cases.push_back({Seed, Variant, Accs});
      }
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<RandomCase> &Info) {
      return std::string("seed") + std::to_string(Info.param.Seed) + "_" +
             getVariantName(Info.param.Variant) + "_a" +
             std::to_string(Info.param.Accs);
    });
