//===- tests/core/DbtTestUtil.h - Shared translator-test helpers ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef ILDP_TESTS_CORE_DBTTESTUTIL_H
#define ILDP_TESTS_CORE_DBTTESTUTIL_H

#include "alpha/Assembler.h"
#include "core/Lowering.h"
#include "core/StrandAlloc.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "core/UsageAnalysis.h"
#include "interp/Interpreter.h"

#include <memory>

namespace ildp {
namespace dbttest {

/// An assembled program plus an interpreter, with recording helpers.
struct Program {
  GuestMemory Mem;
  std::unique_ptr<Interpreter> Interp;
  uint64_t Entry;

  explicit Program(alpha::Assembler &Asm) : Entry(Asm.baseAddr()) {
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
    Interp = std::make_unique<Interpreter>(Mem);
    Interp->state().Pc = Entry;
  }

  /// Records one superblock starting at the current PC.
  dbt::Superblock record(unsigned MaxInsts = 200) {
    dbt::SuperblockBuilder B(Interp->state().Pc, MaxInsts);
    while (B.append(Interp->step()) !=
           dbt::SuperblockBuilder::Status::Done) {
    }
    return B.take();
  }
};

/// Runs lowering + analysis (+ allocation for accumulator variants) on a
/// superblock, returning the annotated block.
inline dbt::LoweredBlock analyze(const dbt::Superblock &Sb,
                                 const dbt::DbtConfig &Config,
                                 dbt::StrandAllocResult *AllocOut = nullptr) {
  dbt::LoweredBlock Block = dbt::lower(Sb, Config).take();
  dbt::analyzeUsage(Block, Config);
  if (Config.Variant != iisa::IsaVariant::Straight) {
    dbt::StrandAllocResult Alloc = formStrandsAndAllocate(Block, Config).take();
    if (AllocOut)
      *AllocOut = std::move(Alloc);
  }
  return Block;
}

} // namespace dbttest
} // namespace ildp

#endif // ILDP_TESTS_CORE_DBTTESTUTIL_H
