//===- tests/core/TranslationCachePropertyTest.cpp ------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property sweeps over the translation cache: I-PC assignment is
/// monotone and non-overlapping under any install order, pending-exit
/// patching converges to a fully-chained state regardless of the order
/// fragments appear, and flushing restarts the world without leaving
/// stale linkage behind.
///
//===----------------------------------------------------------------------===//

#include "core/TranslationCache.h"
#include "support/Rng.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

/// Minimal two-instruction fragment (set_vpc_base + exit branch).
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6};
  F.BodyBytes = 10;
  F.Exits.push_back({1, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  return F;
}

} // namespace

class TCacheOrderTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TCacheOrderTest, ChainRingFullyPatchedUnderAnyInstallOrder) {
  // N fragments forming a ring (each exits to the next entry). Install
  // them in a seeded random order: once all are present, every exit must
  // be patched (no Pending flags, no call-translator branches left) —
  // the same converged state for every order.
  constexpr unsigned N = 9;
  std::vector<unsigned> Order(N);
  for (unsigned I = 0; I != N; ++I)
    Order[I] = I;
  Rng R(0xC0FFEE00ull + GetParam());
  for (unsigned I = N; I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);

  TranslationCache Cache;
  auto EntryOf = [](unsigned I) { return 0x10000ull + I * 0x100; };
  for (unsigned I : Order)
    Cache.install(makeFragment(EntryOf(I), EntryOf((I + 1) % N)));

  ASSERT_EQ(Cache.fragmentCount(), size_t(N));
  // Every exit patched exactly once: N pending exits, N patches.
  EXPECT_EQ(Cache.patchCount(), uint64_t(N));
  for (const auto &F : Cache.fragments()) {
    ASSERT_EQ(F->Exits.size(), 1u);
    EXPECT_FALSE(F->Exits[0].Pending);
    EXPECT_FALSE(F->Body[F->Exits[0].InstIndex].ToTranslator);
    // The patched branch targets the successor fragment's entry.
    const Fragment *Succ = Cache.lookup(F->Exits[0].VTarget);
    ASSERT_NE(Succ, nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TCacheOrderTest, ::testing::Range(0u, 8u));

TEST(TCacheProperty, IBasesAreMonotoneAndNonOverlapping) {
  TranslationCache Cache;
  uint64_t PrevEnd = TranslationCache::TCacheBase;
  for (unsigned I = 0; I != 32; ++I) {
    Fragment &F =
        Cache.install(makeFragment(0x20000 + I * 0x40, 0x90000 + I * 0x40));
    EXPECT_GE(F.IBase, PrevEnd)
        << "fragment " << I << " overlaps its predecessor";
    PrevEnd = F.IBase + F.BodyBytes;
  }
  EXPECT_EQ(Cache.totalBodyBytes(), 32u * 10u);
}

TEST(TCacheProperty, SelfLoopFragmentPatchesItself) {
  // A fragment whose exit targets its own entry (a tight loop) must be
  // chained to itself at install time.
  TranslationCache Cache;
  Fragment &F = Cache.install(makeFragment(0x30000, 0x30000));
  EXPECT_FALSE(F.Exits[0].Pending);
  EXPECT_EQ(Cache.patchCount(), 1u);
}

TEST(TCacheProperty, FlushRestartsWithoutStaleState) {
  TranslationCache Cache;
  for (unsigned I = 0; I != 6; ++I)
    Cache.install(makeFragment(0x40000 + I * 0x40, 0x40000 + I * 0x40));
  ASSERT_EQ(Cache.fragmentCount(), 6u);
  uint64_t BytesBefore = Cache.totalBodyBytes();
  ASSERT_GT(BytesBefore, 0u);

  Cache.flush();
  EXPECT_EQ(Cache.fragmentCount(), 0u);
  EXPECT_EQ(Cache.totalBodyBytes(), 0u);
  EXPECT_EQ(Cache.uniqueSourceInsts(), 0u);
  EXPECT_EQ(Cache.flushCount(), 1u);
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(Cache.lookup(0x40000 + I * 0x40), nullptr);

  // Reinstall after the flush: I-PCs must not reuse the flushed range, so
  // stale predictor/BTB entries can never alias new code.
  Fragment &F = Cache.install(makeFragment(0x40000, 0x40000));
  EXPECT_GE(F.IBase, TranslationCache::TCacheBase + BytesBefore);
  EXPECT_EQ(Cache.fragmentCount(), 1u);
}

TEST(TCacheProperty, PendingExitsDoNotSurviveFlush) {
  // Fragment A pends on target T. Flush, then install a fragment at T:
  // nothing should be patched (A is gone), and patch accounting must not
  // count phantom work.
  TranslationCache Cache;
  Cache.install(makeFragment(0x50000, 0x51000));
  uint64_t PatchesBefore = Cache.patchCount();
  Cache.flush();
  Cache.install(makeFragment(0x51000, 0x52000));
  EXPECT_EQ(Cache.patchCount(), PatchesBefore);
}

TEST(TCacheProperty, UniqueSourceInstsUnionAcrossFragments) {
  TranslationCache Cache;
  // Two fragments covering overlapping V-ISA ranges: the static-footprint
  // denominator counts each source address once.
  Fragment A = makeFragment(0x60000, 0x61000);
  A.SourceVAddrs = {0x60000, 0x60004, 0x60008};
  Fragment B = makeFragment(0x60004, 0x61000);
  B.SourceVAddrs = {0x60004, 0x60008, 0x6000C};
  Cache.install(std::move(A));
  Cache.install(std::move(B));
  EXPECT_EQ(Cache.uniqueSourceInsts(), 4u);
}

TEST(TCacheProperty, LookupIsEntryExactNotRangeBased) {
  // Superblock entries are looked up by exact V-PC; an address in the
  // middle of a translated region is not an entry point (the paper's
  // fragments are single-entry).
  TranslationCache Cache;
  Cache.install(makeFragment(0x70000, 0x71000));
  EXPECT_NE(Cache.lookup(0x70000), nullptr);
  EXPECT_EQ(Cache.lookup(0x70004), nullptr);
  EXPECT_EQ(Cache.lookup(0x6FFFC), nullptr);
}
