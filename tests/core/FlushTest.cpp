//===- tests/core/FlushTest.cpp -------------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation-cache flushing (the Dynamo-style mechanism Section 4.1
/// discusses): the cache-level flush operation, and the VM's phase-change
/// policy — correctness must be unaffected, and the new phase must get
/// fresh fragments.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/TranslationCache.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

dbt::Fragment miniFragment(uint64_t Entry) {
  dbt::Fragment F;
  F.EntryVAddr = Entry;
  iisa::IisaInst Vpc;
  Vpc.Kind = iisa::IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  iisa::IisaInst Br;
  Br.Kind = iisa::IKind::Branch;
  Br.VTarget = Entry + 0x100;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6};
  F.BodyBytes = 10;
  F.Exits.push_back({1, Entry + 0x100, true});
  F.SourceVAddrs = {Entry};
  return F;
}

} // namespace

TEST(TranslationCacheFlush, ClearsEverything) {
  dbt::TranslationCache TC;
  TC.install(miniFragment(0x1000));
  uint64_t FirstIBase = TC.lookup(0x1000)->IBase;
  TC.install(miniFragment(0x2000));
  ASSERT_EQ(TC.fragmentCount(), 2u);

  TC.flush();
  EXPECT_EQ(TC.fragmentCount(), 0u);
  EXPECT_EQ(TC.lookup(0x1000), nullptr);
  EXPECT_EQ(TC.totalBodyBytes(), 0u);
  EXPECT_EQ(TC.uniqueSourceInsts(), 0u);
  EXPECT_EQ(TC.flushCount(), 1u);

  // Reinstallation works and I-PCs never go backwards (predictor state
  // indexed by I-PC must stay coherent).
  dbt::Fragment &F = TC.install(miniFragment(0x1000));
  EXPECT_GT(F.IBase, FirstIBase);
}

TEST(TranslationCacheFlush, PendingExitsDoNotDangleAcrossFlush) {
  dbt::TranslationCache TC;
  TC.install(miniFragment(0x1000)); // pending exit to 0x1100
  TC.flush();
  // Installing the old pending target must not touch freed fragments.
  TC.install(miniFragment(0x1100));
  EXPECT_EQ(TC.patchCount(), 0u);
}

namespace {

/// A two-phase program: phase 1 exercises one set of loops, phase 2 a
/// disjoint set, with enough loops per phase to trip the flush policy.
GuestMemory buildTwoPhase(uint64_t &Entry, uint64_t &Checksum) {
  Assembler Asm(0x10000);
  Asm.movi(0, 9);
  // Two phases x 30 small hot loops each.
  for (int Phase = 0; Phase != 2; ++Phase) {
    for (int L = 0; L != 30; ++L) {
      Asm.loadImm(17, 120); // hot (threshold 50) but short-lived
      auto Loop = Asm.createLabel("p" + std::to_string(Phase) + "_" +
                                  std::to_string(L));
      Asm.bind(Loop);
      Asm.operatei(Op::ADDQ, 9, uint8_t(1 + L % 7), 9);
      Asm.operatei(Op::SUBL, 17, 1, 17);
      Asm.condBr(Op::BNE, 17, Loop);
    }
  }
  Asm.mov(9, RegV0);
  Asm.halt();
  Entry = 0x10000;
  GuestMemory Mem;
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);

  // Reference checksum.
  Interpreter Ref(Mem);
  Ref.state().Pc = Entry;
  EXPECT_EQ(Ref.run(10'000'000).Status, StepStatus::Halted);
  Checksum = Ref.state().readGpr(RegV0);
  return Mem;
}

} // namespace

TEST(VmPhaseFlush, FlushesAndStaysCorrect) {
  uint64_t Entry = 0, Checksum = 0;
  GuestMemory Mem = buildTwoPhase(Entry, Checksum);

  vm::VmConfig Config;
  Config.FlushOnPhaseChange = true;
  Config.PhaseWindow = 50'000;
  Config.PhaseFragmentThreshold = 10;
  vm::VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, vm::StopReason::Halted);
  EXPECT_EQ(Vm.interpreter().state().readGpr(RegV0), Checksum);
  EXPECT_GT(Vm.stats().get("tcache.flushes"), 0u);
}

TEST(VmPhaseFlush, OffByDefault) {
  uint64_t Entry = 0, Checksum = 0;
  GuestMemory Mem = buildTwoPhase(Entry, Checksum);
  vm::VmConfig Config;
  vm::VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, vm::StopReason::Halted);
  EXPECT_EQ(Vm.stats().get("tcache.flushes"), 0u);
  EXPECT_EQ(Vm.interpreter().state().readGpr(RegV0), Checksum);
}
