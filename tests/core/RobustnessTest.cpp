//===- tests/core/RobustnessTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guarded translation pipeline in isolation: the deterministic fault
/// injector's scheduling modes, typed bailouts from translate() at every
/// pipeline site, structural failure detection (malformed superblocks,
/// fragment size limits), and the profile controller's retry/backoff/
/// blacklist feedback loop (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "core/ProfileController.h"
#include "core/TranslateStatus.h"

#include "DbtTestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace ildp;
using namespace ildp::dbt;
using Op = alpha::Opcode;

namespace {

/// A small single-loop superblock every pipeline stage accepts.
Superblock loopSuperblock() {
  alpha::Assembler Asm(0x10000);
  Asm.movi(1, 5);
  auto Head = Asm.createLabel("head");
  Asm.bind(Head);
  Asm.operatei(Op::ADDQ, 2, 3, 2);
  Asm.operatei(Op::SUBQ, 1, 1, 1);
  Asm.condBr(Op::BNE, 1, Head);
  Asm.halt();
  dbttest::Program Prog(Asm);
  Prog.Interp->step(); // movi
  return Prog.record();
}

} // namespace

// ---------------------------------------------------------------------------
// FaultInjector scheduling.
// ---------------------------------------------------------------------------

TEST(FaultInjector, OffSiteCountsHitsButNeverFires) {
  FaultInjector Inj;
  for (int I = 0; I != 5; ++I)
    EXPECT_FALSE(Inj.shouldFail(FaultSite::Lowering));
  EXPECT_EQ(Inj.hitCount(FaultSite::Lowering), 5u);
  EXPECT_EQ(Inj.firedCount(FaultSite::Lowering), 0u);
  EXPECT_EQ(Inj.totalFired(), 0u);
}

TEST(FaultInjector, AlwaysFiresEveryHitAtItsSiteOnly) {
  FaultInjector Inj;
  Inj.armAlways(FaultSite::CodeGen);
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(Inj.shouldFail(FaultSite::CodeGen));
  EXPECT_FALSE(Inj.shouldFail(FaultSite::Decode));
  EXPECT_EQ(Inj.firedCount(FaultSite::CodeGen), 3u);
  EXPECT_EQ(Inj.firedCount(FaultSite::Decode), 0u);
}

TEST(FaultInjector, CountModeFiresExactlyFirstN) {
  FaultInjector Inj;
  Inj.armCount(FaultSite::Usage, 2);
  EXPECT_TRUE(Inj.shouldFail(FaultSite::Usage));
  EXPECT_TRUE(Inj.shouldFail(FaultSite::Usage));
  EXPECT_FALSE(Inj.shouldFail(FaultSite::Usage));
  EXPECT_FALSE(Inj.shouldFail(FaultSite::Usage));
  EXPECT_EQ(Inj.firedCount(FaultSite::Usage), 2u);
  EXPECT_EQ(Inj.hitCount(FaultSite::Usage), 4u);
}

TEST(FaultInjector, RandomModeIsSeedDeterministic) {
  auto Schedule = [](uint64_t Seed) {
    FaultInjector Inj;
    Inj.armRandom(FaultSite::Assemble, Seed, 1, 3);
    std::vector<bool> Fired;
    for (int I = 0; I != 64; ++I)
      Fired.push_back(Inj.shouldFail(FaultSite::Assemble));
    return Fired;
  };
  EXPECT_EQ(Schedule(42), Schedule(42));
  EXPECT_NE(Schedule(42), Schedule(43));
  // Roughly 1/3 of hits fire; at minimum the schedule is mixed.
  std::vector<bool> S = Schedule(42);
  size_t Fired = size_t(std::count(S.begin(), S.end(), true));
  EXPECT_GT(Fired, 0u);
  EXPECT_LT(Fired, S.size());
}

TEST(FaultInjector, DisarmStopsFiringAndKeepsCounters) {
  FaultInjector Inj;
  Inj.armAlways(FaultSite::StrandAlloc);
  EXPECT_TRUE(Inj.shouldFail(FaultSite::StrandAlloc));
  Inj.disarm(FaultSite::StrandAlloc);
  EXPECT_FALSE(Inj.shouldFail(FaultSite::StrandAlloc));
  EXPECT_EQ(Inj.firedCount(FaultSite::StrandAlloc), 1u);
  EXPECT_EQ(Inj.hitCount(FaultSite::StrandAlloc), 2u);
  Inj.resetCounts();
  EXPECT_EQ(Inj.hitCount(FaultSite::StrandAlloc), 0u);
}

TEST(FaultInjector, SiteAndStatusNamesAreStableKeys) {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    std::string Name = getFaultSiteName(FaultSite(I));
    EXPECT_FALSE(Name.empty());
    EXPECT_EQ(Name.find(' '), std::string::npos);
  }
  for (unsigned I = 0; I != NumTranslateStatuses; ++I) {
    std::string Name = getTranslateStatusName(TranslateStatus(I));
    EXPECT_FALSE(Name.empty());
    EXPECT_EQ(Name.find(' '), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Typed bailouts from translate().
// ---------------------------------------------------------------------------

TEST(GuardedTranslate, InjectedFaultAtEveryPipelineSite) {
  Superblock Sb = loopSuperblock();
  const FaultSite Sites[] = {FaultSite::Decode, FaultSite::Lowering,
                             FaultSite::Usage, FaultSite::StrandAlloc,
                             FaultSite::CodeGen, FaultSite::Assemble};
  for (FaultSite Site : Sites) {
    FaultInjector Inj;
    Inj.armAlways(Site);
    DbtConfig Config;
    Config.Fault = &Inj;
    Expected<TranslationResult> R = translate(Sb, Config, ChainEnv());
    EXPECT_FALSE(bool(R)) << getFaultSiteName(Site);
    EXPECT_EQ(R.status(), TranslateStatus::InjectedFault)
        << getFaultSiteName(Site);
    EXPECT_EQ(Inj.firedCount(Site), 1u) << getFaultSiteName(Site);
  }
}

TEST(GuardedTranslate, StrandAllocSiteIsSkippedForStraightVariant) {
  Superblock Sb = loopSuperblock();
  FaultInjector Inj;
  Inj.armAlways(FaultSite::StrandAlloc);
  DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Straight;
  Config.Fault = &Inj;
  Expected<TranslationResult> R = translate(Sb, Config, ChainEnv());
  EXPECT_TRUE(bool(R));
  EXPECT_EQ(Inj.hitCount(FaultSite::StrandAlloc), 0u);
}

TEST(GuardedTranslate, EmptySuperblockIsMalformed) {
  Superblock Sb;
  Sb.EntryVAddr = 0x10000;
  Expected<TranslationResult> R = translate(Sb, DbtConfig(), ChainEnv());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status(), TranslateStatus::MalformedGuestInst);
}

TEST(GuardedTranslate, InvalidInstructionIsMalformed) {
  Superblock Sb = loopSuperblock();
  Sb.Insts[0].Inst = alpha::AlphaInst(); // Opcode::Invalid.
  Expected<TranslationResult> R = translate(Sb, DbtConfig(), ChainEnv());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status(), TranslateStatus::MalformedGuestInst);
}

TEST(GuardedTranslate, MisalignedSourceAddressIsMalformed) {
  Superblock Sb = loopSuperblock();
  Sb.Insts[0].VAddr |= 2;
  Expected<TranslationResult> R = translate(Sb, DbtConfig(), ChainEnv());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status(), TranslateStatus::MalformedGuestInst);
}

TEST(GuardedTranslate, TinyFragmentBudgetReportsFragmentTooLarge) {
  Superblock Sb = loopSuperblock();
  DbtConfig Config;
  Config.MaxFragmentBytes = 4; // No real fragment encodes this small.
  Expected<TranslationResult> R = translate(Sb, Config, ChainEnv());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status(), TranslateStatus::FragmentTooLarge);
}

TEST(GuardedTranslate, UnboundedFragmentBudgetStillTranslates) {
  Superblock Sb = loopSuperblock();
  DbtConfig Config;
  Config.MaxFragmentBytes = 0;
  EXPECT_TRUE(bool(translate(Sb, Config, ChainEnv())));
}

TEST(GuardedTranslate, SameSuperblockSucceedsOnceInjectionStops) {
  Superblock Sb = loopSuperblock();
  FaultInjector Inj;
  Inj.armCount(FaultSite::Lowering, 1);
  DbtConfig Config;
  Config.Fault = &Inj;
  EXPECT_FALSE(bool(translate(Sb, Config, ChainEnv())));
  Expected<TranslationResult> R = translate(Sb, Config, ChainEnv());
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(R->Frag.Body.empty());
}

// ---------------------------------------------------------------------------
// ProfileController retry/backoff/blacklist.
// ---------------------------------------------------------------------------

namespace {

/// Bumps until the controller reports hot or the safety limit trips.
unsigned bumpsUntilHot(ProfileController &P, uint64_t Pc, unsigned Limit) {
  for (unsigned I = 1; I <= Limit; ++I)
    if (P.bump(Pc))
      return I;
  return 0;
}

} // namespace

TEST(ProfileBackoff, FailureResetsCounterAndInflatesThreshold) {
  ProfileController P(4);
  P.addCandidate(0x100);
  EXPECT_EQ(bumpsUntilHot(P, 0x100, 100), 4u);

  // First failure: the threshold is multiplied by the backoff factor and
  // the Translated mark (set optimistically by an async submission) drops.
  P.markTranslated(0x100);
  EXPECT_FALSE(P.recordFailure(0x100, /*MaxRetries=*/3, /*Backoff=*/2));
  EXPECT_FALSE(P.isTranslated(0x100));
  EXPECT_EQ(P.failureCount(0x100), 1u);
  EXPECT_EQ(bumpsUntilHot(P, 0x100, 100), 8u);

  // Second failure doubles again.
  EXPECT_FALSE(P.recordFailure(0x100, 3, 2));
  EXPECT_EQ(bumpsUntilHot(P, 0x100, 100), 16u);
}

TEST(ProfileBackoff, BlacklistAfterRetryBudget) {
  ProfileController P(2);
  P.addCandidate(0x200);
  // MaxRetries = 1: the second failure blacklists.
  EXPECT_FALSE(P.recordFailure(0x200, 1, 8));
  EXPECT_FALSE(P.isBlacklisted(0x200));
  EXPECT_TRUE(P.recordFailure(0x200, 1, 8));
  EXPECT_TRUE(P.isBlacklisted(0x200));
  EXPECT_EQ(P.blacklistedCount(), 1u);
  // A blacklisted entry never qualifies again.
  EXPECT_EQ(bumpsUntilHot(P, 0x200, 10'000), 0u);
  // Recording another failure on a blacklisted entry is a no-op.
  EXPECT_FALSE(P.recordFailure(0x200, 1, 8));
}

TEST(ProfileBackoff, FailureStateSurvivesFlush) {
  ProfileController P(2);
  P.addCandidate(0x300);
  P.recordFailure(0x300, 0, 4); // MaxRetries=0: first failure blacklists.
  EXPECT_TRUE(P.isBlacklisted(0x300));
  P.resetAfterFlush();
  EXPECT_TRUE(P.isBlacklisted(0x300));
  EXPECT_EQ(bumpsUntilHot(P, 0x300, 10'000), 0u);
}

TEST(ProfileBackoff, OtherEntriesAreUnaffected) {
  ProfileController P(3);
  P.addCandidate(0x400);
  P.addCandidate(0x408);
  P.recordFailure(0x400, 3, 8);
  EXPECT_EQ(bumpsUntilHot(P, 0x408, 100), 3u);
}

TEST(ProfileBackoff, ThresholdInflationSaturatesInsteadOfOverflowing) {
  ProfileController P(1u << 20);
  P.addCandidate(0x500);
  for (int I = 0; I != 64; ++I)
    P.recordFailure(0x500, /*MaxRetries=*/1000, /*Backoff=*/1u << 16);
  EXPECT_FALSE(P.isBlacklisted(0x500));
  EXPECT_GT(P.failureCount(0x500), 0u);
  // The entry is effectively never hot, but bump() must not wrap into
  // firing spuriously.
  EXPECT_FALSE(P.bump(0x500));
}
