//===- tests/core/SuperblockBuilderTest.cpp -------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MRET recording: fragment-ending conditions and path following, driven
/// by a real interpreter over assembled programs.
///
//===----------------------------------------------------------------------===//

#include "core/SuperblockBuilder.h"

#include "alpha/Assembler.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

struct Recorder {
  GuestMemory Mem;
  std::unique_ptr<Interpreter> Interp;

  explicit Recorder(Assembler &Asm) {
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
    Interp = std::make_unique<Interpreter>(Mem);
    Interp->state().Pc = Asm.baseAddr();
  }

  /// Records from the current PC until the builder finishes.
  Superblock record(unsigned MaxInsts = 200) {
    SuperblockBuilder B(Interp->state().Pc, MaxInsts);
    while (B.append(Interp->step()) != SuperblockBuilder::Status::Done) {
    }
    return B.take();
  }
};

} // namespace

TEST(SuperblockBuilder, EndsAtBackwardTakenBranch) {
  Assembler Asm(0x1000);
  Asm.movi(5, 1);
  auto L = Asm.createLabel("loop");
  Asm.bind(L);
  Asm.operatei(Op::ADDQ, 2, 1, 2);
  Asm.operatei(Op::SUBQ, 1, 1, 1);
  Asm.condBr(Op::BNE, 1, L);
  Asm.halt();
  Recorder R(Asm);
  // Skip the mov so recording starts at the loop head.
  R.Interp->step();
  Superblock Sb = R.record();
  EXPECT_EQ(Sb.End, SbEndReason::BackwardTaken);
  EXPECT_EQ(Sb.EntryVAddr, 0x1004u);
  EXPECT_EQ(Sb.Insts.size(), 3u);
  EXPECT_EQ(Sb.FinalNextVAddr, 0x1004u); // loops back
  EXPECT_TRUE(Sb.Insts.back().Taken);
}

TEST(SuperblockBuilder, EndsAtIndirectJumpAndReturn) {
  Assembler Asm(0x1000);
  auto F = Asm.createLabel("f");
  Asm.loadLabelAddr(27, F);
  Asm.jsr(26, 27);
  Asm.halt();
  Asm.bind(F);
  Asm.movi(1, 1);
  Asm.ret(26);
  Recorder R(Asm);
  Superblock Sb = R.record();
  EXPECT_EQ(Sb.End, SbEndReason::IndirectJump);
  EXPECT_EQ(Sb.Insts.back().Inst.Op, Op::JSR);

  Superblock Sb2 = R.record();
  EXPECT_EQ(Sb2.End, SbEndReason::Return);
  EXPECT_EQ(Sb2.Insts.back().Inst.Op, Op::RET);
  EXPECT_EQ(Sb2.FinalNextVAddr, 0x100Cu);
}

TEST(SuperblockBuilder, FollowsDirectBranches) {
  // Straightening: BR does not end recording; the target code is inlined.
  Assembler Asm(0x1000);
  auto Skip = Asm.createLabel("skip");
  Asm.movi(1, 1);
  Asm.br(Skip);
  Asm.movi(99, 2); // never executed
  Asm.bind(Skip);
  Asm.movi(2, 3);
  Asm.halt();
  Recorder R(Asm);
  Superblock Sb = R.record();
  EXPECT_EQ(Sb.End, SbEndReason::Trap);
  ASSERT_EQ(Sb.Insts.size(), 4u); // movi, br, movi, halt
  EXPECT_EQ(Sb.Insts[2].VAddr, Asm.labelAddr(Skip));
}

TEST(SuperblockBuilder, EndsOnCycle) {
  // An unconditional BR back into already-collected code: BR itself is
  // straightened through, so the cycle condition fires.
  Assembler Asm(0x1000);
  auto Top = Asm.createLabel("top");
  Asm.bind(Top);
  Asm.operatei(Op::ADDQ, 2, 1, 2);
  Asm.operatei(Op::ADDQ, 2, 2, 2);
  Asm.br(Top);
  Recorder R(Asm);
  Superblock Sb = R.record();
  EXPECT_EQ(Sb.End, SbEndReason::Cycle);
  EXPECT_EQ(Sb.FinalNextVAddr, 0x1000u);
  EXPECT_EQ(Sb.Insts.size(), 3u); // two adds + the BR
}

TEST(SuperblockBuilder, MaxSizeCap) {
  Assembler Asm(0x1000);
  for (int I = 0; I != 50; ++I)
    Asm.operatei(Op::ADDQ, 1, 1, 1);
  Asm.halt();
  Recorder R(Asm);
  Superblock Sb = R.record(/*MaxInsts=*/10);
  EXPECT_EQ(Sb.End, SbEndReason::MaxSize);
  EXPECT_EQ(Sb.Insts.size(), 10u);
  EXPECT_EQ(Sb.FinalNextVAddr, 0x1000u + 10 * 4);
}

TEST(SuperblockBuilder, TrapAbortsCleanly) {
  Assembler Asm(0x1000);
  Asm.movi(1, 1);
  Asm.loadImm(16, 0x800000);
  Asm.ldq(2, 0, 16); // faults
  Asm.halt();
  Recorder R(Asm);
  Superblock Sb = R.record();
  EXPECT_EQ(Sb.End, SbEndReason::Aborted);
  // The trapping load is not collected.
  EXPECT_EQ(Sb.Insts.back().Inst.Op, Op::LDAH);
  EXPECT_EQ(Sb.FinalNextVAddr, Sb.Insts.back().VAddr + 4);
}

TEST(SuperblockBuilder, ReversedForwardBranchRecordsTakenPath) {
  Assembler Asm(0x1000);
  auto T = Asm.createLabel("t");
  Asm.movi(1, 1);
  Asm.condBr(Op::BNE, 1, T); // taken forward
  Asm.movi(99, 2);
  Asm.bind(T);
  Asm.movi(3, 3);
  Asm.halt();
  Recorder R(Asm);
  Superblock Sb = R.record();
  ASSERT_GE(Sb.Insts.size(), 3u);
  EXPECT_TRUE(Sb.Insts[1].Taken);
  // The recorded path continues at the taken target.
  EXPECT_EQ(Sb.Insts[2].VAddr, Asm.labelAddr(T));
}
