//===- tests/core/CacheEvictionTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant suite for the bounded translation cache (DESIGN.md §10):
/// the byte budget is never exceeded after any install, eviction never
/// leaves a chained exit pointing at a non-resident entry, unchained
/// exits re-patch when their target returns, victim selection follows
/// the exec-weighted LRU order (with recency protection), injected
/// eviction faults degrade to a wholesale flush, and evicted storage
/// survives in the graveyard until explicitly reclaimed.
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "core/TranslationCache.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::iisa;

namespace {

/// Minimal two-instruction fragment (set_vpc_base + exit branch),
/// BodyBytes = 10.
Fragment makeFragment(uint64_t Entry, uint64_t Target) {
  Fragment F;
  F.EntryVAddr = Entry;
  F.Variant = IsaVariant::Modified;
  IisaInst Vpc;
  Vpc.Kind = IKind::SetVpcBase;
  Vpc.VTarget = Entry;
  Vpc.SizeBytes = 6;
  F.Body.push_back(Vpc);
  IisaInst Br;
  Br.Kind = IKind::Branch;
  Br.VTarget = Target;
  Br.ToTranslator = true;
  Br.SizeBytes = 4;
  F.Body.push_back(Br);
  F.InstOffset = {0, 6};
  F.BodyBytes = 10;
  F.Exits.push_back({1, Target, /*Pending=*/true});
  F.SourceVAddrs = {Entry};
  return F;
}

constexpr uint64_t FragBytes = 10;

} // namespace

TEST(CacheEviction, ZeroBudgetNeverEvicts) {
  TranslationCache Cache;
  ASSERT_EQ(Cache.byteBudget(), 0u);
  for (unsigned I = 0; I != 100; ++I) {
    Cache.install(makeFragment(0x10000 + I * 0x40, 0x10000 + I * 0x40));
    Cache.lookup(0x10000 + I * 0x40); // Recency path must stay dormant.
  }
  EXPECT_EQ(Cache.evictionCount(), 0u);
  EXPECT_EQ(Cache.evictedBytes(), 0u);
  EXPECT_EQ(Cache.graveyardSize(), 0u);
  EXPECT_EQ(Cache.degradedFlushCount(), 0u);
  EXPECT_EQ(Cache.totalBodyBytes(), 100 * FragBytes);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, BudgetNeverExceededAfterAnyInstall) {
  TranslationCache Cache;
  Cache.setByteBudget(3 * FragBytes);
  // A ring of fragments: each exit targets the next entry, so evictions
  // constantly tear chains while installs re-form them.
  constexpr unsigned N = 16;
  auto EntryOf = [](unsigned I) { return 0x20000ull + I * 0x100; };
  for (unsigned I = 0; I != N; ++I) {
    Cache.install(makeFragment(EntryOf(I), EntryOf((I + 1) % N)));
    EXPECT_LE(Cache.totalBodyBytes(), Cache.byteBudget())
        << "budget exceeded after install " << I;
    EXPECT_EQ(Cache.chainInvariantViolations(), 0u)
        << "chain invariant broken after install " << I;
  }
  EXPECT_EQ(Cache.fragmentCount(), 3u);
  EXPECT_EQ(Cache.evictionCount(), uint64_t(N - 3));
  EXPECT_EQ(Cache.evictedBytes(), uint64_t(N - 3) * FragBytes);
  EXPECT_EQ(Cache.budgetHighWater(), 3 * FragBytes);
  EXPECT_EQ(Cache.degradedFlushCount(), 0u);
}

TEST(CacheEviction, EvictedEntriesAreNotVisible) {
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0x30000, 0x99000));
  Cache.install(makeFragment(0x30100, 0x99000));
  Cache.install(makeFragment(0x30200, 0x99000)); // Evicts 0x30000.
  EXPECT_EQ(Cache.lookup(0x30000), nullptr);
  EXPECT_FALSE(Cache.contains(0x30000));
  EXPECT_NE(Cache.lookup(0x30100), nullptr);
  EXPECT_NE(Cache.lookup(0x30200), nullptr);
  const TranslationCache &Const = Cache;
  EXPECT_EQ(Const.lookup(0x30000), nullptr);
}

TEST(CacheEviction, EvictionUnchainsSurvivorsAndReinstallRepatches) {
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  Fragment &A = Cache.install(makeFragment(0x40000, 0x41000));
  Cache.install(makeFragment(0x41000, 0x99000)); // Patches A's exit.
  ASSERT_FALSE(A.Exits[0].Pending);
  ASSERT_FALSE(A.Body[A.Exits[0].InstIndex].ToTranslator);

  // Protect A via the recency ring, then overflow: B (0x41000) is the
  // only unprotected candidate and must be the victim.
  Cache.lookup(0x40000);
  Cache.install(makeFragment(0x42000, 0x99000));
  ASSERT_FALSE(Cache.contains(0x41000));
  ASSERT_TRUE(Cache.contains(0x40000));

  // A's chained exit into the evicted fragment reverted to its
  // call-translator form...
  EXPECT_TRUE(A.Exits[0].Pending);
  EXPECT_TRUE(A.Body[A.Exits[0].InstIndex].ToTranslator);
  EXPECT_EQ(Cache.unchainedExitCount(), 1u);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);

  // ...and went back into the pending multimap: reinstalling the target
  // patches it again.
  uint64_t PatchesBefore = Cache.patchCount();
  Cache.install(makeFragment(0x41000, 0x99000)); // Evicts 0x42000.
  ASSERT_TRUE(Cache.contains(0x40000));
  EXPECT_FALSE(A.Exits[0].Pending);
  EXPECT_FALSE(A.Body[A.Exits[0].InstIndex].ToTranslator);
  EXPECT_GT(Cache.patchCount(), PatchesBefore);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, VictimSelectionIsExecWeighted) {
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  // A is older (lower entry, equal tick) but far hotter; the cold B must
  // be chosen even though plain LRU would pick A.
  Fragment &A = Cache.install(makeFragment(0x50000, 0x99000));
  Cache.install(makeFragment(0x50100, 0x99000));
  A.ExecCount = 1000;
  Cache.install(makeFragment(0x50200, 0x99000));
  EXPECT_TRUE(Cache.contains(0x50000));
  EXPECT_FALSE(Cache.contains(0x50100));
}

TEST(CacheEviction, EqualHeatFallsBackToLeastRecentlyUsed) {
  TranslationCache Cache;
  Cache.setByteBudget(3 * FragBytes);
  Cache.install(makeFragment(0x58000, 0x99000));
  Cache.install(makeFragment(0x58100, 0x99000));
  Cache.install(makeFragment(0x58200, 0x99000));
  // Same exec bucket everywhere; only 0x58100 was never re-used, but the
  // lookups below also protect 0x58000/0x58200 via the recency ring.
  Cache.lookup(0x58000);
  Cache.lookup(0x58200);
  Cache.install(makeFragment(0x58300, 0x99000));
  EXPECT_FALSE(Cache.contains(0x58100));
  EXPECT_TRUE(Cache.contains(0x58000));
  EXPECT_TRUE(Cache.contains(0x58200));
}

TEST(CacheEviction, AllProtectedStillEvictsOldestUse) {
  // When every resident is inside the recency ring the protection bit is
  // uniform and the (bucket, tick) order still yields a victim — the
  // cache must never dead-lock into a failed eviction without a fault.
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0x60000, 0x99000));
  Cache.install(makeFragment(0x60100, 0x99000));
  Cache.lookup(0x60000); // Tick 1.
  Cache.lookup(0x60100); // Tick 2.
  Cache.install(makeFragment(0x60200, 0x99000));
  EXPECT_FALSE(Cache.contains(0x60000));
  EXPECT_TRUE(Cache.contains(0x60100));
  EXPECT_EQ(Cache.degradedFlushCount(), 0u);
  EXPECT_EQ(Cache.evictionCount(), 1u);
}

TEST(CacheEviction, SelfLoopFragmentEvictsCleanly) {
  TranslationCache Cache;
  Cache.setByteBudget(FragBytes);
  Fragment &A = Cache.install(makeFragment(0x70000, 0x70000));
  ASSERT_FALSE(A.Exits[0].Pending); // Chained to itself.
  // Evicting the self-chained fragment must not leave a dangling pending
  // or reverse-chain record pointing into the graveyard.
  Cache.install(makeFragment(0x70100, 0x70100));
  EXPECT_FALSE(Cache.contains(0x70000));
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
  // Reinstalling the entry must patch only the new fragment's own exit.
  Fragment &A2 = Cache.install(makeFragment(0x70000, 0x70000));
  EXPECT_FALSE(A2.Exits[0].Pending);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, PreChainedExitToMissingTargetIsUnchainedAtInstall) {
  // An asynchronous worker can finish against a stale chainability
  // snapshot: its fragment arrives with an exit already chained to an
  // entry that has since been evicted. install() must revert that exit.
  TranslationCache Cache;
  Fragment F = makeFragment(0x80000, 0x81000);
  F.Exits[0].Pending = false;
  F.Body[F.Exits[0].InstIndex].ToTranslator = false;
  Fragment &In = Cache.install(std::move(F));
  EXPECT_TRUE(In.Exits[0].Pending);
  EXPECT_TRUE(In.Body[In.Exits[0].InstIndex].ToTranslator);
  EXPECT_EQ(Cache.unchainedExitCount(), 1u);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
  // The reverted exit is pending again: installing the target chains it.
  Cache.install(makeFragment(0x81000, 0x99000));
  EXPECT_FALSE(In.Exits[0].Pending);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, EvictSelectFaultDegradesToWholesaleFlush) {
  FaultInjector Inj;
  Inj.armAlways(FaultSite::EvictSelect);
  TranslationCache Cache;
  Cache.setFaultInjector(&Inj);
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0x90000, 0x99000));
  Cache.install(makeFragment(0x90100, 0x99000));
  EXPECT_EQ(Inj.firedCount(FaultSite::EvictSelect), 0u); // No pressure yet.
  uint64_t IBaseBefore = Cache.fragments().back()->IBase;
  Cache.install(makeFragment(0x90200, 0x99000));
  EXPECT_EQ(Inj.firedCount(FaultSite::EvictSelect), 1u);
  EXPECT_EQ(Cache.degradedFlushCount(), 1u);
  EXPECT_EQ(Cache.flushCount(), 1u);
  EXPECT_EQ(Cache.evictionCount(), 0u);
  // Only the incoming fragment survives the degradation flush, and I-PC
  // assignment stays monotonic across it.
  EXPECT_EQ(Cache.fragmentCount(), 1u);
  EXPECT_TRUE(Cache.contains(0x90200));
  EXPECT_GT(Cache.fragments().back()->IBase, IBaseBefore);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, UnchainFaultDegradesToWholesaleFlush) {
  FaultInjector Inj;
  Inj.armAlways(FaultSite::Unchain);
  TranslationCache Cache;
  Cache.setFaultInjector(&Inj);
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0xA0000, 0x99000));
  Cache.install(makeFragment(0xA0100, 0x99000));
  Cache.install(makeFragment(0xA0200, 0x99000));
  EXPECT_EQ(Inj.firedCount(FaultSite::Unchain), 1u);
  EXPECT_EQ(Cache.degradedFlushCount(), 1u);
  EXPECT_EQ(Cache.evictionCount(), 0u);
  EXPECT_EQ(Cache.fragmentCount(), 1u);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, TransientEvictFaultRecovers) {
  FaultInjector Inj;
  Inj.armCount(FaultSite::EvictSelect, 1);
  TranslationCache Cache;
  Cache.setFaultInjector(&Inj);
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0xA8000, 0x99000));
  Cache.install(makeFragment(0xA8100, 0x99000));
  Cache.install(makeFragment(0xA8200, 0x99000)); // Faulted: degrades.
  ASSERT_EQ(Cache.degradedFlushCount(), 1u);
  Cache.install(makeFragment(0xA8300, 0x99000));
  Cache.install(makeFragment(0xA8400, 0x99000)); // Fault spent: evicts.
  EXPECT_EQ(Cache.degradedFlushCount(), 1u);
  EXPECT_EQ(Cache.evictionCount(), 1u);
  EXPECT_LE(Cache.totalBodyBytes(), Cache.byteBudget());
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, EvictionListenerSeesEachVictimBeforeTeardown) {
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  std::vector<uint64_t> Victims;
  Cache.setEvictionListener(
      [&](const Fragment &F) { Victims.push_back(F.EntryVAddr); });
  Cache.install(makeFragment(0xB0000, 0x99000));
  Cache.install(makeFragment(0xB0100, 0x99000));
  Cache.install(makeFragment(0xB0200, 0x99000));
  Cache.install(makeFragment(0xB0300, 0x99000));
  EXPECT_EQ(Victims, (std::vector<uint64_t>{0xB0000, 0xB0100}));
}

TEST(CacheEviction, GraveyardKeepsStorageAliveUntilReclaim) {
  TranslationCache Cache;
  Cache.setByteBudget(FragBytes);
  Fragment &A = Cache.install(makeFragment(0xC0000, 0x99000));
  Cache.install(makeFragment(0xC0100, 0x99000)); // Evicts A.
  ASSERT_EQ(Cache.graveyardSize(), 1u);
  // The evicted fragment's storage is still valid — this mirrors the
  // VM's execute-translated loop holding a raw Fragment* across the
  // install that evicted it.
  EXPECT_EQ(A.EntryVAddr, 0xC0000u);
  EXPECT_EQ(A.BodyBytes, FragBytes);
  Cache.reclaimEvicted();
  EXPECT_EQ(Cache.graveyardSize(), 0u);
}

TEST(CacheEviction, FlushedFragmentsAlsoLandInGraveyard) {
  TranslationCache Cache;
  Cache.install(makeFragment(0xC8000, 0x99000));
  Cache.install(makeFragment(0xC8100, 0x99000));
  Cache.flush();
  EXPECT_EQ(Cache.graveyardSize(), 2u);
  Cache.reclaimEvicted();
  EXPECT_EQ(Cache.graveyardSize(), 0u);
}

TEST(CacheEviction, DropPendingExitsToBlacklistedTarget) {
  TranslationCache Cache;
  Fragment &A = Cache.install(makeFragment(0xD0000, 0xD9000));
  Fragment &B = Cache.install(makeFragment(0xD0100, 0xD9000));
  ASSERT_TRUE(A.Exits[0].Pending);
  // The VM blacklisted 0xD9000: both records must be purged.
  EXPECT_EQ(Cache.dropPendingExitsTo(0xD9000), 2u);
  EXPECT_EQ(Cache.droppedPendingCount(), 2u);
  // The owners keep their (correct) call-translator exits...
  EXPECT_TRUE(A.Exits[0].Pending);
  EXPECT_TRUE(B.Exits[0].Pending);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
  // ...and a later install at the address patches nothing stale.
  uint64_t PatchesBefore = Cache.patchCount();
  Fragment &T = Cache.install(makeFragment(0xD9000, 0xE0000));
  (void)T;
  EXPECT_EQ(Cache.patchCount(), PatchesBefore);
  EXPECT_TRUE(A.Exits[0].Pending);
  EXPECT_EQ(Cache.dropPendingExitsTo(0xFFFFF), 0u); // No-op on empty.
}

TEST(CacheEviction, ExportExcludesEvictedFragments) {
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  Cache.install(makeFragment(0xE0000, 0x99000));
  Cache.install(makeFragment(0xE0100, 0x99000));
  Cache.install(makeFragment(0xE0200, 0x99000)); // Evicts 0xE0000.
  std::vector<const Fragment *> Exported = Cache.exportAll();
  ASSERT_EQ(Exported.size(), 2u);
  for (const Fragment *F : Exported)
    EXPECT_NE(F->EntryVAddr, 0xE0000u);
}

TEST(CacheEviction, ImportRespectsBudgetAndCountsSkips) {
  std::vector<Fragment> Saved;
  for (unsigned I = 0; I != 5; ++I)
    Saved.push_back(makeFragment(0xF0000 + I * 0x100, 0x99000));
  TranslationCache Cache;
  Cache.setByteBudget(2 * FragBytes);
  EXPECT_EQ(Cache.importAll(std::move(Saved)), 2u);
  EXPECT_EQ(Cache.importBudgetSkips(), 3u);
  EXPECT_EQ(Cache.fragmentCount(), 2u);
  EXPECT_LE(Cache.totalBodyBytes(), Cache.byteBudget());
  // A warm start must never thrash the budget with evictions.
  EXPECT_EQ(Cache.evictionCount(), 0u);
  EXPECT_EQ(Cache.chainInvariantViolations(), 0u);
}

TEST(CacheEviction, EvictionEpochCountsEvictionsAndDegradedFlushes) {
  FaultInjector Inj;
  TranslationCache Cache;
  Cache.setFaultInjector(&Inj);
  Cache.setByteBudget(2 * FragBytes);
  EXPECT_EQ(Cache.evictionEpoch(), 0u);
  Cache.install(makeFragment(0x100000, 0x99000));
  Cache.install(makeFragment(0x100100, 0x99000));
  Cache.install(makeFragment(0x100200, 0x99000)); // Eviction.
  EXPECT_EQ(Cache.evictionEpoch(), 1u);
  Inj.armCount(FaultSite::EvictSelect, 1);
  Cache.install(makeFragment(0x100300, 0x99000)); // Degraded flush.
  EXPECT_EQ(Cache.evictionEpoch(), 2u);
}
