//===- tests/core/TranslationServiceTest.cpp ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The background translation service: results must be bit-equivalent to
/// the synchronous translate() under the same chain-environment snapshot,
/// completions must come back in submission order regardless of worker
/// count, and both shutdown modes (finish-queued, cancel) must terminate
/// cleanly.
///
//===----------------------------------------------------------------------===//

#include "core/TranslationService.h"

#include "core/FaultInjector.h"

#include "DbtTestUtil.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

/// Records \p Count superblocks, one per loop of a multi-loop program.
std::vector<Superblock> recordSuperblocks(unsigned Count) {
  Assembler Asm(0x10000);
  std::vector<Assembler::Label> Heads;
  Asm.movi(3, 1); // r1 = 3 loop iterations.
  for (unsigned L = 0; L != Count; ++L) {
    Assembler::Label Head = Asm.createLabel("loop" + std::to_string(L));
    Heads.push_back(Head);
    Asm.bind(Head);
    Asm.operatei(Op::ADDQ, 2, 0, 2);
    Asm.operatei(Op::SUBQ, 1, 1, 1);
    Asm.condBr(Op::BNE, 1, Head);
    Asm.movi(3, 1); // Re-seed the counter for the next loop.
  }
  Asm.halt();
  std::vector<uint64_t> HeadAddrs;
  for (Assembler::Label Head : Heads)
    HeadAddrs.push_back(Asm.labelAddr(Head));
  dbttest::Program Prog(Asm);

  std::vector<Superblock> Out;
  while (Out.size() != Count) {
    uint64_t Pc = Prog.Interp->state().Pc;
    bool IsHead = false;
    for (uint64_t Head : HeadAddrs)
      IsHead |= Head == Pc;
    if (IsHead && (Out.empty() || Out.back().EntryVAddr != Pc)) {
      Out.push_back(Prog.record());
      continue;
    }
    if (Prog.Interp->step().Status != StepStatus::Ok)
      break;
  }
  EXPECT_EQ(Out.size(), Count);
  return Out;
}

bool sameTranslation(const TranslationResult &A, const TranslationResult &B) {
  return A.Frag.Body.size() == B.Frag.Body.size() &&
         A.Frag.BodyBytes == B.Frag.BodyBytes &&
         A.Frag.Exits.size() == B.Frag.Exits.size() &&
         A.Frag.SourceInsts == B.Frag.SourceInsts &&
         A.Cost.total() == B.Cost.total() && A.Uops == B.Uops &&
         A.Strands == B.Strands && A.Spills == B.Spills;
}

} // namespace

TEST(TranslationService, ResultMatchesSynchronousTranslate) {
  std::vector<Superblock> Sbs = recordSuperblocks(1);
  ASSERT_EQ(Sbs.size(), 1u);
  DbtConfig Config;

  ChainEnv Env; // Default: nothing translated.
  TranslationResult Sync = translate(Sbs[0], Config, Env).take();

  TranslationService Service(Config, 1, 8);
  uint64_t Seq = Service.submit(Sbs[0], {}, /*Epoch=*/0);
  EXPECT_EQ(Seq, 1u);
  TranslateCompletion C = Service.takeNext();
  EXPECT_EQ(C.Seq, 1u);
  EXPECT_EQ(C.EntryVAddr, Sbs[0].EntryVAddr);
  EXPECT_TRUE(sameTranslation(C.Result, Sync));
}

TEST(TranslationService, ChainableSnapshotMatchesSyncChainEnv) {
  std::vector<Superblock> Sbs = recordSuperblocks(1);
  ASSERT_EQ(Sbs.size(), 1u);
  DbtConfig Config;
  uint64_t Entry = Sbs[0].EntryVAddr;

  // Synchronous translation where the entry itself counts as translated
  // (the self-loop exit comes out chained, not pending).
  ChainEnv Env;
  Env.IsTranslated = [Entry](uint64_t V) { return V == Entry; };
  TranslationResult Sync = translate(Sbs[0], Config, Env).take();

  TranslationService Service(Config, 2, 8);
  Service.submit(Sbs[0], {Entry}, /*Epoch=*/0);
  TranslateCompletion C = Service.takeNext();
  EXPECT_TRUE(sameTranslation(C.Result, Sync));
  ASSERT_FALSE(C.Result.Frag.Exits.empty());
  ASSERT_FALSE(Sync.Frag.Exits.empty());
  EXPECT_EQ(C.Result.Frag.Exits.back().Pending, Sync.Frag.Exits.back().Pending);
}

TEST(TranslationService, DeliversInSubmissionOrderAcrossWorkers) {
  constexpr unsigned N = 12;
  std::vector<Superblock> Sbs = recordSuperblocks(N);
  ASSERT_EQ(Sbs.size(), size_t(N));
  DbtConfig Config;

  TranslationService Service(Config, 4, 4);
  std::vector<uint64_t> Entries;
  for (const Superblock &Sb : Sbs) {
    Entries.push_back(Sb.EntryVAddr);
    Service.submit(Sb, {}, /*Epoch=*/0);
  }
  EXPECT_EQ(Service.submittedCount(), uint64_t(N));

  for (unsigned I = 0; I != N; ++I) {
    TranslateCompletion C = Service.takeNext();
    EXPECT_EQ(C.Seq, uint64_t(I + 1));
    EXPECT_EQ(C.EntryVAddr, Entries[I]);
  }
  EXPECT_EQ(Service.deliveredCount(), uint64_t(N));
  EXPECT_EQ(Service.outstandingCount(), 0u);
  EXPECT_EQ(Service.tryTakeNext(), std::nullopt);
  EXPECT_FALSE(Service.nextReady());
}

TEST(TranslationService, EpochIsEchoedBack) {
  std::vector<Superblock> Sbs = recordSuperblocks(2);
  DbtConfig Config;
  TranslationService Service(Config, 1, 8);
  Service.submit(Sbs[0], {}, /*Epoch=*/0);
  Service.submit(Sbs[1], {}, /*Epoch=*/3);
  EXPECT_EQ(Service.takeNext().Epoch, 0u);
  EXPECT_EQ(Service.takeNext().Epoch, 3u);
}

TEST(TranslationService, ShutdownFinishQueuedCompletesEverything) {
  constexpr unsigned N = 8;
  std::vector<Superblock> Sbs = recordSuperblocks(N);
  DbtConfig Config;
  TranslationService Service(Config, 2, N);
  for (const Superblock &Sb : Sbs)
    Service.submit(Sb, {}, /*Epoch=*/0);

  EXPECT_EQ(Service.shutdown(/*FinishQueued=*/true), 0u);
  // Every queued request was translated and is still takeable, in order.
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Service.takeNext().Seq, uint64_t(I + 1));
  EXPECT_EQ(Service.outstandingCount(), 0u);
}

TEST(TranslationService, CancellingShutdownDropsQueuedWork) {
  constexpr unsigned N = 8;
  std::vector<Superblock> Sbs = recordSuperblocks(N);
  DbtConfig Config;
  // One worker and a deep queue: most requests are still queued when the
  // cancelling shutdown lands.
  TranslationService Service(Config, 1, N);
  for (const Superblock &Sb : Sbs)
    Service.submit(Sb, {}, /*Epoch=*/0);
  size_t Cancelled = Service.shutdown(/*FinishQueued=*/false);
  EXPECT_LE(Cancelled, size_t(N));
  // Shutdown is idempotent; destruction after an explicit shutdown is a
  // no-op (no double-join, no hang).
  EXPECT_EQ(Service.shutdown(false), 0u);
}

TEST(TranslationService, WorkerBailoutDeliversTypedFailureCompletion) {
  std::vector<Superblock> Sbs = recordSuperblocks(3);
  ASSERT_EQ(Sbs.size(), 3u);
  FaultInjector Inj;
  Inj.armCount(FaultSite::AsyncWorker, 1); // Only the first request fails.
  DbtConfig Config;
  Config.Fault = &Inj;

  TranslationService Service(Config, 1, 8);
  for (const Superblock &Sb : Sbs)
    Service.submit(Sb, {}, /*Epoch=*/0);

  // The failed request still produces an in-order completion — typed, with
  // an empty result — and does not wedge delivery of later successes.
  TranslateCompletion First = Service.takeNext();
  EXPECT_EQ(First.Seq, 1u);
  EXPECT_FALSE(First.ok());
  EXPECT_EQ(First.Status, TranslateStatus::InjectedFault);
  EXPECT_EQ(First.EntryVAddr, Sbs[0].EntryVAddr);
  EXPECT_EQ(First.SourceInsts, uint64_t(Sbs[0].Insts.size()));
  EXPECT_TRUE(First.Result.Frag.Body.empty());

  for (unsigned I = 1; I != 3; ++I) {
    TranslateCompletion C = Service.takeNext();
    EXPECT_EQ(C.Seq, uint64_t(I + 1));
    EXPECT_TRUE(C.ok());
    EXPECT_FALSE(C.Result.Frag.Body.empty());
  }
  EXPECT_EQ(Service.outstandingCount(), 0u);
}

TEST(TranslationService, PipelineBailoutInsideWorkerIsTypedToo) {
  std::vector<Superblock> Sbs = recordSuperblocks(1);
  FaultInjector Inj;
  Inj.armAlways(FaultSite::CodeGen); // Fault deep in the pipeline, not at
  DbtConfig Config;                  // the worker boundary.
  Config.Fault = &Inj;
  TranslationService Service(Config, 2, 4);
  Service.submit(Sbs[0], {}, /*Epoch=*/0);
  TranslateCompletion C = Service.takeNext();
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.Status, TranslateStatus::InjectedFault);
  EXPECT_TRUE(C.Result.Frag.Body.empty());
}

TEST(TranslationService, DestructorCancelsOutstandingWork) {
  std::vector<Superblock> Sbs = recordSuperblocks(6);
  DbtConfig Config;
  {
    TranslationService Service(Config, 1, 8);
    for (const Superblock &Sb : Sbs)
      Service.submit(Sb, {}, /*Epoch=*/0);
    // Destructor performs a cancelling shutdown: must not hang or leak.
  }
  SUCCEED();
}
