//===- tests/core/Fig2GoldenTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own worked example as a golden test: the 164.gzip loop of
/// Figure 2 translated to the basic and modified accumulator ISAs. The
/// generated code must reproduce the structure the paper shows — strand
/// assignment, copy placement (basic), destination-GPR annotation
/// (modified), and the two-instruction chain ending.
///
//===----------------------------------------------------------------------===//

#include "DbtTestUtil.h"

#include "core/CodeGen.h"
#include "iisa/Disasm.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::dbt;
using namespace ildp::dbttest;
using Op = Opcode;

namespace {

/// Assembles Figure 2(a) with the loop at a known address and a live data
/// environment so recording follows the loop.
struct Fig2Program {
  std::unique_ptr<Program> Prog;
  uint64_t LoopEntry = 0;

  Fig2Program() {
    Assembler Asm(0x10000);
    // Environment: r16 = buffer, r17 = count, r0 = table, r1 = hash.
    Asm.loadImm(16, 0x20000);
    Asm.loadImm(17, 64);
    Asm.loadImm(0, 0x21000);
    Asm.loadImm(1, 0x1234);
    auto L1 = Asm.createLabel("L1");
    Asm.bind(L1);
    Asm.ldbu(3, 0, 16);                // ldbu r3, 0[r16]
    Asm.operatei(Op::SUBL, 17, 1, 17); // subl r17, 1, r17
    Asm.lda(16, 1, 16);                // lda r16, 1[r16]
    Asm.operate(Op::XOR, 1, 3, 3);     // xor r1, r3, r3
    Asm.operatei(Op::SRL, 1, 8, 1);    // srl r1, 8, r1
    Asm.operatei(Op::AND, 3, 0xFF, 3); // and r3, 0xff, r3
    Asm.operate(Op::S8ADDQ, 3, 0, 3);  // s8addq r3, r0, r3
    Asm.ldq(3, 0, 3);                  // ldq r3, 0[r3]
    Asm.operate(Op::XOR, 3, 1, 1);     // xor r3, r1, r1
    Asm.condBr(Op::BNE, 17, L1);       // bne r17, L1
    Asm.halt();                        // L2:
    Prog = std::make_unique<Program>(Asm);
    LoopEntry = Asm.labelAddr(L1);
    // Table entries must land inside the mapped table region: the hash
    // chain indexes table[byte & 0xff].
    Prog->Mem.mapRegion(0x20000, 0x2000);
    // Run to the loop head, then record one iteration.
    while (Prog->Interp->state().Pc != LoopEntry)
      Prog->Interp->step();
  }
};

std::vector<std::string> disasmBody(const Fragment &Frag) {
  std::vector<std::string> Lines;
  for (const auto &Inst : Frag.Body)
    Lines.push_back(iisa::disassemble(Inst));
  return Lines;
}

std::string hex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", (unsigned long long)V);
  return Buf;
}

} // namespace

TEST(Fig2Golden, BasicIsa) {
  Fig2Program P;
  Superblock Sb = P.Prog->record();
  ASSERT_EQ(Sb.End, SbEndReason::BackwardTaken);
  ASSERT_EQ(Sb.Insts.size(), 10u);

  DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Basic;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();

  // Figure 2(c), with the set-VPC-base prologue (Section 2.2) first.
  const std::vector<std::string> Expected = {
      "VPC <- " + hex(P.LoopEntry),
      "A0 <- mem[R16]",       // ldbu
      "A1 <- R17 - 1",        // subl
      "R17 <- A1",            //   copy (live out)
      "A2 <- R16 + 1",        // lda
      "R16 <- A2",            //   copy (live out)
      "A0 <- R1 xor A0",      // xor r1, r3, r3
      "A3 <- R1 >> 8",        // srl
      "A0 <- A0 and 255",     // and
      "A0 <- 8*A0 + R0",      // s8addq
      "A0 <- mem[A0]",        // ldq
      "R3 <- A0",             //   copy (live out)
      "A3 <- R3 xor A3",      // xor r3, r1, r1
      "R1 <- A3",             //   copy (live out)
      "P <- " + hex(P.LoopEntry) + ", if (A1 != 0)",
      // L2 is not yet translated: a call-translator exit, patched later.
      "P <- " + hex(P.LoopEntry + 10 * 4) + " [translator]",
  };
  EXPECT_EQ(disasmBody(R.Frag), Expected);

  // Exactly the paper's structure: 4 copy instructions, strand count 4,
  // both exits recorded.
  unsigned Copies = 0;
  for (const auto &Inst : R.Frag.Body)
    Copies += Inst.Kind == iisa::IKind::CopyToGpr;
  EXPECT_EQ(Copies, 4u);
  EXPECT_EQ(R.Strands, 4u);
  EXPECT_EQ(R.Spills, 0u);
  ASSERT_EQ(R.Frag.Exits.size(), 2u);
  EXPECT_EQ(R.Frag.Exits[0].VTarget, P.LoopEntry); // self-chain
  EXPECT_FALSE(R.Frag.Exits[0].Pending);

  // PEI table: the two loads, with correct V-addresses.
  ASSERT_EQ(R.Frag.PeiTable.size(), 2u);
  EXPECT_EQ(R.Frag.PeiTable[0].VAddr, P.LoopEntry);
  EXPECT_EQ(R.Frag.PeiTable[1].VAddr, P.LoopEntry + 7 * 4);
}

TEST(Fig2Golden, ModifiedIsa) {
  Fig2Program P;
  Superblock Sb = P.Prog->record();

  DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();

  // Figure 2(d): destination registers explicit, no copy instructions.
  const std::vector<std::string> Expected = {
      "VPC <- " + hex(P.LoopEntry),
      "R3 (A0) <- mem[R16]",
      "R17 (A1) <- R17 - 1",
      "R16 (A2) <- R16 + 1",
      "R3 (A0) <- R1 xor A0",
      "R1 (A3) <- R1 >> 8",
      "R3 (A0) <- A0 and 255",
      "R3 (A0) <- 8*A0 + R0",
      "R3 (A0) <- mem[A0]",
      "R1 (A3) <- R3 xor A3",
      "P <- " + hex(P.LoopEntry) + ", if (A1 != 0)",
      "P <- " + hex(P.LoopEntry + 10 * 4) + " [translator]",
  };
  EXPECT_EQ(disasmBody(R.Frag), Expected);

  for (const auto &Inst : R.Frag.Body) {
    EXPECT_NE(Inst.Kind, iisa::IKind::CopyToGpr);
    EXPECT_NE(Inst.Kind, iisa::IKind::CopyFromGpr);
  }

  // Dynamic instruction counts: basic 16 vs modified 12 for this loop —
  // the copy elimination the paper quantifies in Table 2.
  DbtConfig BasicConfig;
  BasicConfig.Variant = iisa::IsaVariant::Basic;
  TranslationResult BasicR = translate(Sb, BasicConfig, ChainEnv()).take();
  EXPECT_EQ(BasicR.Frag.Body.size(), 16u);
  EXPECT_EQ(R.Frag.Body.size(), 12u);
  // Static footprint: modified spends more bytes per instruction but has
  // fewer instructions — for this loop the two roughly cancel.
  EXPECT_LE(R.Frag.BodyBytes, BasicR.Frag.BodyBytes);
}

TEST(Fig2Golden, ModifiedShadowWriteClassification) {
  Fig2Program P;
  Superblock Sb = P.Prog->record();
  DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();

  // Intermediate r3/r1 definitions are consumed through accumulators and
  // redefined before the exit: shadow-file-only writes. The final
  // (live-out) definitions are operational.
  const auto &Body = R.Frag.Body;
  EXPECT_TRUE(Body[4].GprWriteArchOnly);   // xor r1,r3,r3 (local)
  EXPECT_TRUE(Body[5].GprWriteArchOnly);   // srl (local)
  EXPECT_TRUE(Body[6].GprWriteArchOnly);   // and (local)
  EXPECT_FALSE(Body[2].GprWriteArchOnly);  // subl r17 (live out)
  EXPECT_FALSE(Body[8].GprWriteArchOnly);  // ldq r3 (live out)
  EXPECT_FALSE(Body[9].GprWriteArchOnly);  // final xor r1 (live out)
}

TEST(Fig2Golden, BasicPeiTableCoversAccHeldState) {
  Fig2Program P;
  Superblock Sb = P.Prog->record();
  DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Basic;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();

  // At the first load (the ldbu), nothing is held in accumulators yet
  // (all live state is in the GPR file at loop entry).
  EXPECT_TRUE(R.Frag.PeiTable[0].AccHeldRegs.empty());
  // At the second load (the ldq), r3's current architected value is the
  // s8addq result, which lives only in A0 at that point.
  const auto &Held = R.Frag.PeiTable[1].AccHeldRegs;
  bool R3InA0 = false;
  for (auto [Reg, Acc] : Held)
    R3InA0 |= Reg == 3 && Acc == 0;
  EXPECT_TRUE(R3InA0);
}
