//===- tests/core/TrapSweepTest.cpp ---------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive precise-trap property: for a memory-walking program, shrink
/// the mapped data region step by step so the fault lands at *different
/// loop depths and PEI sites*, and require bit-exact architected-state
/// recovery against the reference interpreter every time, for both
/// accumulator ISAs and the straightening backend.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

/// A loop with several PEIs per iteration (two loads, one store) and live
/// accumulator state at each of them.
std::vector<uint32_t> buildWalker(uint64_t &Entry) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20000);
  Asm.loadImm(18, 0x40000);
  Asm.loadImm(17, 3000);
  Asm.movi(0, 9);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.operatei(Op::ADDQ, 9, 3, 2); // locals in accumulators at the PEIs
  Asm.operatei(Op::SLL, 2, 2, 3);
  Asm.ldq(4, 0, 16);               // PEI 1
  Asm.operate(Op::XOR, 3, 4, 5);
  Asm.ldq(6, 8, 16);               // PEI 2 (split address)
  Asm.operate(Op::ADDQ, 5, 6, 5);
  Asm.stq(5, 0, 18);               // PEI 3 (store to a separate region)
  Asm.operate(Op::ADDQ, 9, 5, 9);
  Asm.lda(16, 16, 16);
  Asm.lda(18, 8, 18);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  Entry = 0x10000;
  return Asm.finalize();
}

void loadProgram(GuestMemory &Mem, const std::vector<uint32_t> &Words,
                 uint64_t DataBytes, uint64_t StoreBytes) {
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Mem.mapRegion(0x20000, DataBytes); // loads walk 16B/iter (48KB total)
  Mem.mapRegion(0x40000, StoreBytes); // stores walk 8B/iter (24KB total)
  for (uint64_t I = 0; I * 8 < DataBytes; ++I)
    Mem.poke64(0x20000 + I * 8, I * 0x9E3779B97F4A7C15ull + 7);
}

struct SweepCase {
  uint64_t DataBytes;  ///< Mapped size of the load region.
  uint64_t StoreBytes; ///< Mapped size of the store region.
  iisa::IsaVariant Variant;
};

class TrapSweep : public ::testing::TestWithParam<SweepCase> {};

} // namespace

TEST_P(TrapSweep, RecoveryIsBitExact) {
  SweepCase Case = GetParam();
  uint64_t Entry = 0;
  std::vector<uint32_t> Words = buildWalker(Entry);

  // Reference.
  GuestMemory RefMem;
  loadProgram(RefMem, Words, Case.DataBytes, Case.StoreBytes);
  Interpreter Ref(RefMem);
  Ref.state().Pc = Entry;
  StepInfo Last = Ref.run(10'000'000);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);

  // VM with translated execution.
  GuestMemory Mem;
  loadProgram(Mem, Words, Case.DataBytes, Case.StoreBytes);
  vm::VmConfig Config;
  Config.Dbt.Variant = Case.Variant;
  vm::VirtualMachine Vm(Mem, Entry, Config);
  vm::RunResult Result = Vm.run();
  ASSERT_EQ(Result.Reason, vm::StopReason::Trapped);
  EXPECT_GT(Vm.stats().get("exit.trap"), 0u)
      << "the trap should fire from translated code";

  EXPECT_EQ(Result.Trap.TrapInfo.Kind, Last.TrapInfo.Kind);
  EXPECT_EQ(Result.Trap.TrapInfo.Pc, Last.TrapInfo.Pc);
  EXPECT_EQ(Result.Trap.TrapInfo.MemAddr, Last.TrapInfo.MemAddr);
  EXPECT_EQ(Result.Trap.Arch.Pc, Ref.state().Pc);
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Result.Trap.Arch.readGpr(Reg), Ref.state().readGpr(Reg))
        << "r" << Reg;
}

INSTANTIATE_TEST_SUITE_P(
    FaultSites, TrapSweep, ::testing::ValuesIn([] {
      std::vector<SweepCase> Cases;
      // Shrinking the load region makes PEI 1 or PEI 2 fault at varying
      // iteration parities; shrinking the store region faults PEI 3.
      for (auto Variant : {iisa::IsaVariant::Basic, iisa::IsaVariant::Modified,
                           iisa::IsaVariant::Straight}) {
        // Non-faulting sizes: loads need 48KB, stores 24KB.
        for (uint64_t KB : {8u, 12u, 16u, 20u})
          Cases.push_back({KB * 1024, 32 * 1024, Variant});
        for (uint64_t KB : {4u, 8u})
          Cases.push_back({64 * 1024, KB * 1024, Variant});
        // Misaligned variant: map everything, but the data walk crosses
        // into an odd stride via the 8-byte loads at +8 over 16-byte
        // steps — covered by the unmapped cases above; keep region odd
        // sized to land the boundary mid-iteration.
        Cases.push_back({10 * 1024 + 8, 32 * 1024, Variant});
      }
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      return std::string(dbt::getVariantName(Info.param.Variant)) + "_d" +
             std::to_string(Info.param.DataBytes) + "_s" +
             std::to_string(Info.param.StoreBytes);
    });
