//===- tests/core/StrandAllocTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "DbtTestUtil.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::dbt;
using namespace ildp::dbttest;
using iisa::UsageClass;
using Op = Opcode;

namespace {

struct BlockBuilder {
  Superblock Sb;
  uint64_t Pc = 0x1000;

  BlockBuilder() {
    Sb.EntryVAddr = Pc;
    Sb.End = SbEndReason::MaxSize;
  }

  void op(Op O, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
    AlphaInst I;
    I.Op = O;
    I.Ra = Ra;
    I.Rb = Rb;
    I.Rc = Rc;
    SourceInst S;
    S.VAddr = Pc;
    S.Inst = I;
    S.NextVAddr = Pc + 4;
    Sb.Insts.push_back(S);
    Pc += 4;
    Sb.FinalNextVAddr = Pc;
  }

  void opi(Op O, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
    AlphaInst I;
    I.Op = O;
    I.Ra = Ra;
    I.HasLit = true;
    I.Lit = Lit;
    I.Rc = Rc;
    SourceInst S;
    S.VAddr = Pc;
    S.Inst = I;
    S.NextVAddr = Pc + 4;
    Sb.Insts.push_back(S);
    Pc += 4;
    Sb.FinalNextVAddr = Pc;
  }
};

DbtConfig config(unsigned Accs = 4) {
  DbtConfig C;
  C.Variant = iisa::IsaVariant::Modified;
  C.NumAccumulators = Accs;
  return C;
}

} // namespace

TEST(StrandAlloc, ChainsShareOneStrand) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2); // start strand
  B.opi(Op::ADDQ, 2, 2, 3); // continue (local input)
  B.opi(Op::ADDQ, 3, 3, 4); // continue
  B.opi(Op::ADDQ, 1, 9, 2); // redefs keep r2/r3 local-class
  B.opi(Op::ADDQ, 1, 9, 3);
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  const auto &U = Block.List.Uops;
  EXPECT_EQ(U[0].Strand, U[1].Strand);
  EXPECT_EQ(U[1].Strand, U[2].Strand);
  EXPECT_EQ(U[0].Acc, U[2].Acc);
  EXPECT_EQ(Alloc.NumStrands, 3u); // the chain plus the two redef strands
}

TEST(StrandAlloc, IndependentChainsGetDistinctAccs) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2);
  B.opi(Op::ADDQ, 5, 1, 6);
  B.opi(Op::ADDQ, 2, 2, 2); // continue chain 1 (r2 local)
  B.opi(Op::ADDQ, 6, 2, 6); // continue chain 2
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  const auto &U = Block.List.Uops;
  EXPECT_EQ(Alloc.NumStrands, 2u);
  EXPECT_NE(U[0].Acc, U[1].Acc);
  EXPECT_EQ(U[0].Strand, U[2].Strand);
  EXPECT_EQ(U[1].Strand, U[3].Strand);
}

TEST(StrandAlloc, TwoGlobalInputsGetPreCopy) {
  BlockBuilder B;
  B.op(Op::ADDQ, 1, 2, 3); // both inputs live-in globals
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  EXPECT_EQ(Block.List.Uops[0].PreCopySlot, 1);
  EXPECT_EQ(Alloc.PreCopies, 1u);
}

TEST(StrandAlloc, OneGlobalOneImmNoPreCopy) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 7, 3);
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  EXPECT_EQ(Block.List.Uops[0].PreCopySlot, 0);
  EXPECT_EQ(Alloc.PreCopies, 0u);
}

TEST(StrandAlloc, TwoLocalInputsSpillOne) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2); // strand A: r2 local
  B.opi(Op::ADDQ, 5, 2, 6); // strand B: r6 local
  B.op(Op::ADDQ, 2, 6, 7);  // two local inputs
  B.opi(Op::ADDQ, 1, 0, 2); // redefine r2 and r6 so they stay local-class
  B.opi(Op::ADDQ, 1, 0, 6);
  B.opi(Op::ADDQ, 7, 0, 7);
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  const auto &U = Block.List.Uops;
  // One of the two producers is demoted to a spill global.
  bool Spilled0 = U[0].OutUsage == UsageClass::SpillGlobal;
  bool Spilled1 = U[1].OutUsage == UsageClass::SpillGlobal;
  EXPECT_NE(Spilled0, Spilled1);
  // The consumer joins the surviving producer's strand.
  int Winner = Spilled0 ? U[1].Strand : U[0].Strand;
  EXPECT_EQ(U[2].Strand, Winner);
}

TEST(StrandAlloc, LongerStrandWinsTwoLocalHeuristic) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2); // strand A, length 1
  B.opi(Op::ADDQ, 2, 2, 2); // strand A, length 2
  B.opi(Op::ADDQ, 2, 3, 2); // strand A, length 3 (r2 local chain)
  B.opi(Op::ADDQ, 5, 1, 6); // strand B, length 1: r6
  B.op(Op::ADDQ, 2, 6, 7);  // r2 (strand A) vs r6 (strand B)
  B.opi(Op::ADDQ, 1, 0, 2); // redefs keep classes local
  B.opi(Op::ADDQ, 1, 0, 6);
  B.opi(Op::ADDQ, 7, 0, 7);
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(), &Alloc);
  const auto &U = Block.List.Uops;
  EXPECT_EQ(U[4].Strand, U[2].Strand); // joined the longer strand
  EXPECT_EQ(U[3].OutUsage, UsageClass::SpillGlobal);
}

TEST(StrandAlloc, ExhaustionTerminatesAndResumes) {
  // Two accumulators, three overlapping strands: the allocator must
  // terminate one (copy-to-GPR) and resume it later (copy-from-GPR).
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2);  // strand 1
  B.opi(Op::ADDQ, 1, 2, 3);  // strand 2
  B.opi(Op::ADDQ, 1, 3, 4);  // strand 3 -> exhaustion at 2 accumulators
  B.opi(Op::ADDQ, 2, 1, 2);  // strand 1 continues
  B.opi(Op::ADDQ, 3, 1, 3);  // strand 2 continues
  B.opi(Op::ADDQ, 4, 1, 4);  // strand 3 continues
  StrandAllocResult Alloc;
  LoweredBlock Block = analyze(B.Sb, config(/*Accs=*/2), &Alloc);
  EXPECT_GE(Alloc.SpillTerminations, 1u);
  EXPECT_GE(Alloc.Reloads.size(), 1u);
  // Every value-producing uop still has a valid accumulator.
  for (const Uop &U : Block.List.Uops)
    if (U.producesValue()) {
      EXPECT_GE(U.Acc, 0);
      EXPECT_LT(U.Acc, 2);
    }
}

TEST(StrandAlloc, EightAccumulatorsReduceSpills) {
  BlockBuilder B;
  // Eight interleaved strands, each continuing later.
  for (int I = 0; I != 8; ++I)
    B.opi(Op::ADDQ, 1, uint8_t(I), uint8_t(2 + I));
  for (int I = 0; I != 8; ++I)
    B.opi(Op::ADDQ, uint8_t(2 + I), 1, uint8_t(2 + I));
  StrandAllocResult Alloc4, Alloc8;
  analyze(B.Sb, config(4), &Alloc4);
  DbtConfig C8 = config(8);
  analyze(B.Sb, C8, &Alloc8);
  EXPECT_GT(Alloc4.SpillTerminations, 0u);
  EXPECT_EQ(Alloc8.SpillTerminations, 0u);
}
