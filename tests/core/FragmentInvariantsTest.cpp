//===- tests/core/FragmentInvariantsTest.cpp ------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants every generated fragment must satisfy, checked
/// over the Figure 2 program and parameterized configurations:
///   - every instruction passes iisa::validate for its variant,
///   - the body ends with an exit; internal exits only via cond_exit,
///   - PEI table entries exist exactly for the PEIs, in order,
///   - V-credits over the straight-line path account for all source
///     instructions (minus NOPs),
///   - instruction offsets are consistent with encoded sizes.
///
//===----------------------------------------------------------------------===//

#include "DbtTestUtil.h"

#include "core/CodeGen.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::dbt;
using namespace ildp::dbttest;
using Op = Opcode;

namespace {

/// Checks all structural invariants of \p Frag.
void checkInvariants(const Fragment &Frag) {
  ASSERT_FALSE(Frag.Body.empty());
  EXPECT_EQ(Frag.Body[0].Kind, iisa::IKind::SetVpcBase);
  EXPECT_EQ(Frag.Body[0].VTarget, Frag.EntryVAddr);
  EXPECT_TRUE(Frag.Body.back().isExit());

  uint32_t Offset = 0;
  size_t PeiCursor = 0;
  for (size_t I = 0; I != Frag.Body.size(); ++I) {
    const iisa::IisaInst &Inst = Frag.Body[I];
    EXPECT_EQ(validate(Inst, Frag.Variant), "")
        << "inst " << I << ": " << validate(Inst, Frag.Variant);
    EXPECT_EQ(Frag.InstOffset[I], Offset);
    EXPECT_GT(Inst.SizeBytes, 0);
    Offset += Inst.SizeBytes;
    // Non-final instructions may exit only conditionally.
    if (I + 1 != Frag.Body.size() && Inst.isExit()) {
      EXPECT_EQ(Inst.Kind, iisa::IKind::CondExit) << "inst " << I;
    }
    if (Inst.isPei()) {
      ASSERT_LT(PeiCursor, Frag.PeiTable.size());
      EXPECT_EQ(Frag.PeiTable[PeiCursor].InstIndex, I);
      EXPECT_NE(Frag.PeiTable[PeiCursor].VAddr, 0u);
      ++PeiCursor;
    }
  }
  EXPECT_EQ(PeiCursor, Frag.PeiTable.size());
  EXPECT_EQ(Frag.BodyBytes, Offset);

  // Straight-line V-credit accounting: walking the whole body (no taken
  // exits) retires every recorded source instruction except NOPs.
  unsigned Credits = 0;
  for (const iisa::IisaInst &Inst : Frag.Body)
    Credits += Inst.VCredit;
  EXPECT_EQ(Credits, Frag.SourceInsts - Frag.NopsRemoved);

  // Exit records point at exit instructions with matching targets.
  for (const ExitRecord &Exit : Frag.Exits) {
    const iisa::IisaInst &Inst = Frag.Body[Exit.InstIndex];
    EXPECT_TRUE(Inst.Kind == iisa::IKind::CondExit ||
                Inst.Kind == iisa::IKind::Branch);
    EXPECT_EQ(Inst.VTarget, Exit.VTarget);
    EXPECT_EQ(Inst.ToTranslator, Exit.Pending);
  }
}

/// A program with diverse instruction shapes for invariant checking.
/// \p LoopAddr receives the hot loop head address.
std::unique_ptr<Program> buildDiverseProgram(uint64_t &LoopAddr) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20000);
  Asm.loadImm(17, 32);
  Asm.loadImm(0, 0x21000);
  Asm.movi(3, 1);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.ldq(2, 8, 16);                  // split memory op
  Asm.operate(Op::ADDQ, 2, 1, 4);     // two-global case
  Asm.operate(Op::CMOVEQ, 4, 2, 3);   // cmov decomposition
  Asm.nop();                          // removed
  Asm.operatei(Op::SRL, 4, 3, 5);
  Asm.stq(5, 16, 16);                 // split store
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  auto P = std::make_unique<Program>(Asm);
  LoopAddr = Asm.labelAddr(Loop);
  P->Mem.mapRegion(0x20000, 0x2000);
  return P;
}

struct InvariantParam {
  iisa::IsaVariant Variant;
  ChainPolicy Chaining;
  unsigned Accs;
  bool SplitMem;
};

class FragmentInvariants
    : public ::testing::TestWithParam<InvariantParam> {};

} // namespace

TEST_P(FragmentInvariants, HoldOnDiverseProgram) {
  InvariantParam Param = GetParam();
  uint64_t LoopAddr = 0;
  auto Prog = buildDiverseProgram(LoopAddr);
  // Skip the prologue: record from the loop head.
  while (Prog->Interp->state().Pc != LoopAddr)
    Prog->Interp->step();
  Superblock Sb = Prog->record();
  ASSERT_FALSE(Sb.Insts.empty());

  DbtConfig Config;
  Config.Variant = Param.Variant;
  Config.Chaining = Param.Chaining;
  Config.NumAccumulators = Param.Accs;
  Config.SplitMemoryOps = Param.SplitMem;
  TranslationResult R = translate(Sb, Config, ChainEnv()).take();
  checkInvariants(R.Frag);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FragmentInvariants,
    ::testing::Values(
        InvariantParam{iisa::IsaVariant::Basic, ChainPolicy::SwPredRas, 4,
                       true},
        InvariantParam{iisa::IsaVariant::Basic, ChainPolicy::NoPred, 2,
                       true},
        InvariantParam{iisa::IsaVariant::Modified, ChainPolicy::SwPredRas,
                       4, true},
        InvariantParam{iisa::IsaVariant::Modified,
                       ChainPolicy::SwPredNoRas, 8, true},
        InvariantParam{iisa::IsaVariant::Modified, ChainPolicy::SwPredRas,
                       4, false},
        InvariantParam{iisa::IsaVariant::Basic, ChainPolicy::SwPredRas, 1,
                       true},
        InvariantParam{iisa::IsaVariant::Straight, ChainPolicy::SwPredRas,
                       4, true},
        InvariantParam{iisa::IsaVariant::Straight, ChainPolicy::NoPred, 4,
                       true}),
    [](const ::testing::TestParamInfo<InvariantParam> &Info) {
      std::string Name = getVariantName(Info.param.Variant);
      Name += "_";
      for (char C : std::string(getChainPolicyName(Info.param.Chaining)))
        Name += C == '.' ? '_' : C;
      Name += "_a" + std::to_string(Info.param.Accs);
      Name += Info.param.SplitMem ? "_split" : "_nosplit";
      return Name;
    });

TEST(FragmentInvariants, IndirectEndingsPerPolicy) {
  Assembler Asm(0x10000);
  auto F = Asm.createLabel("f");
  Asm.loadLabelAddr(27, F);
  auto CallSite = Asm.createLabel("call");
  Asm.bind(CallSite);
  Asm.jsr(26, 27);
  Asm.halt();
  Asm.bind(F);
  Asm.ret(26);
  Program Prog(Asm);
  Prog.Interp->step();
  Prog.Interp->step(); // loadLabelAddr
  Superblock CallSb = Prog.record(); // the JSR superblock
  Superblock RetSb = Prog.record();  // the RET superblock
  ASSERT_EQ(CallSb.End, SbEndReason::IndirectJump);
  ASSERT_EQ(RetSb.End, SbEndReason::Return);

  auto LastKind = [](const Fragment &F2) { return F2.Body.back().Kind; };

  DbtConfig C;
  C.Variant = iisa::IsaVariant::Modified;
  C.Chaining = ChainPolicy::NoPred;
  EXPECT_EQ(LastKind(translate(CallSb, C, ChainEnv()).take().Frag),
            iisa::IKind::JumpDispatch);
  EXPECT_EQ(LastKind(translate(RetSb, C, ChainEnv()).take().Frag),
            iisa::IKind::JumpDispatch);

  C.Chaining = ChainPolicy::SwPredNoRas;
  EXPECT_EQ(LastKind(translate(CallSb, C, ChainEnv()).take().Frag),
            iisa::IKind::JumpPredict);
  EXPECT_EQ(LastKind(translate(RetSb, C, ChainEnv()).take().Frag),
            iisa::IKind::JumpPredict);

  C.Chaining = ChainPolicy::SwPredRas;
  Fragment CallFrag = translate(CallSb, C, ChainEnv()).take().Frag;
  EXPECT_EQ(LastKind(CallFrag), iisa::IKind::JumpPredict);
  // The call fragment pushes the dual-address RAS.
  bool HasPush = false;
  for (const auto &Inst : CallFrag.Body)
    HasPush |= Inst.Kind == iisa::IKind::PushDualRas;
  EXPECT_TRUE(HasPush);
  EXPECT_EQ(LastKind(translate(RetSb, C, ChainEnv()).take().Frag),
            iisa::IKind::ReturnDual);
}
