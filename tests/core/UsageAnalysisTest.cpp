//===- tests/core/UsageAnalysisTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "DbtTestUtil.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::dbt;
using namespace ildp::dbttest;
using iisa::UsageClass;
using Op = Opcode;

namespace {

/// Straight-line block builder for analysis tests.
struct BlockBuilder {
  Superblock Sb;
  uint64_t Pc = 0x1000;

  BlockBuilder() {
    Sb.EntryVAddr = Pc;
    Sb.End = SbEndReason::MaxSize;
  }

  void add(AlphaInst Inst, bool Taken = false, uint64_t Next = 0) {
    SourceInst S;
    S.VAddr = Pc;
    S.Inst = Inst;
    S.Taken = Taken;
    S.NextVAddr = Next ? Next : Pc + 4;
    Sb.Insts.push_back(S);
    Pc += 4;
    Sb.FinalNextVAddr = Pc;
  }

  void op(Op O, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
    AlphaInst I;
    I.Op = O;
    I.Ra = Ra;
    I.Rb = Rb;
    I.Rc = Rc;
    add(I);
  }

  void opi(Op O, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
    AlphaInst I;
    I.Op = O;
    I.Ra = Ra;
    I.HasLit = true;
    I.Lit = Lit;
    I.Rc = Rc;
    add(I);
  }

  void load(uint8_t Ra, uint8_t Rb) {
    AlphaInst I;
    I.Op = Op::LDQ;
    I.Ra = Ra;
    I.Rb = Rb;
    add(I);
  }

  void condBr(Op O, uint8_t Ra, int32_t Disp, bool Taken) {
    AlphaInst I;
    I.Op = O;
    I.Ra = Ra;
    I.Disp = Disp;
    uint64_t Next = Taken ? Pc + 4 + uint64_t(Disp) * 4 : 0;
    add(I, Taken, Next);
  }
};

DbtConfig config(iisa::IsaVariant V) {
  DbtConfig C;
  C.Variant = V;
  return C;
}

} // namespace

TEST(UsageAnalysis, BasicClasses) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2); // r2 = r1+1     : local (used once, redefined)
  B.opi(Op::ADDQ, 2, 2, 3); // r3 = r2+2     : comm (used twice, redefined)
  B.op(Op::ADDQ, 3, 3, 4);  // r4 = r3+r3    : live out
  B.opi(Op::ADDQ, 1, 3, 2); // r2 redefined  : live out
  B.opi(Op::ADDQ, 1, 5, 3); // r3 redefined  : live out
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  const auto &U = Block.List.Uops;
  EXPECT_EQ(U[0].OutUsage, UsageClass::Local);
  EXPECT_EQ(U[1].OutUsage, UsageClass::CommGlobal);
  EXPECT_EQ(U[2].OutUsage, UsageClass::LiveOutGlobal);
  EXPECT_EQ(U[3].OutUsage, UsageClass::LiveOutGlobal);
  EXPECT_EQ(U[4].OutUsage, UsageClass::LiveOutGlobal);
}

TEST(UsageAnalysis, NoUserClass) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2); // dead: overwritten without use
  B.opi(Op::ADDQ, 1, 2, 2);
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::NoUser);
}

TEST(UsageAnalysis, ReachingDefsAndLiveIns) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 7, 1, 2);
  B.op(Op::ADDQ, 2, 7, 3); // r2 from uop 0; r7 live-in
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  EXPECT_EQ(Block.List.Uops[1].In1.DefIdx, 0);
  EXPECT_EQ(Block.List.Uops[1].In2.DefIdx, -1);
  EXPECT_EQ(Block.List.Uops[0].NumUses, 1);
  EXPECT_EQ(Block.List.Uops[0].RedefIdx, -1);
}

TEST(UsageAnalysis, BasicExitPromotion) {
  // A local value whose register stays current across a conditional side
  // exit must be promoted to local->global in the basic ISA (Figure 7).
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2);            // def r2
  B.condBr(Op::BEQ, 3, 8, false);      // side exit; r2 current here
  B.opi(Op::ADDQ, 2, 1, 4);            // use of r2
  B.opi(Op::ADDQ, 1, 2, 2);            // redef r2
  B.opi(Op::ADDQ, 4, 1, 4);            // keep r4 from being the only liveout
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Basic));
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::LocalToGlobal);
  EXPECT_TRUE(Block.List.Uops[0].NeedsGprCopy);

  // The modified ISA does not need the promotion.
  LoweredBlock Mod = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  EXPECT_EQ(Mod.List.Uops[0].OutUsage, UsageClass::Local);
}

TEST(UsageAnalysis, NoPromotionWhenRedefinedBeforeExit) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2);       // def r2 (local)
  B.opi(Op::ADDQ, 2, 1, 2);       // use + redef r2 before the exit
  B.condBr(Op::BEQ, 3, 8, false); // side exit
  B.opi(Op::ADDQ, 2, 1, 2);       // redef again
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Basic));
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::Local);
  EXPECT_FALSE(Block.List.Uops[0].NeedsGprCopy);
}

TEST(UsageAnalysis, TrapRulePromotion) {
  // Section 2.2: a local whose accumulator dies before a PEI while its
  // register is still live needs a copy (basic ISA only).
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 2);  // def r2 in a strand
  B.opi(Op::ADDQ, 2, 2, 3);  // use r2; same strand continues -> acc dies
  B.load(4, 5);              // PEI while r2 still architecturally live
  B.opi(Op::ADDQ, 1, 3, 2);  // redef r2 after the PEI
  B.opi(Op::ADDQ, 3, 1, 3);  // redef r3 too (keep it from forcing liveout)
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Basic));
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::LocalToGlobal);
  EXPECT_TRUE(Block.List.Uops[0].NeedsGprCopy);
}

TEST(UsageAnalysis, IndirectTargetForcedGlobal) {
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 27); // computed call target
  AlphaInst Jmp;
  Jmp.Op = Op::JMP;
  Jmp.Ra = 31;
  Jmp.Rb = 27;
  B.add(Jmp, true, 0x5000);
  B.Sb.End = SbEndReason::IndirectJump;
  B.Sb.FinalNextVAddr = 0x5000;
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Basic));
  // The target definition must be materialized for the chaining code.
  // (Never redefined, so the conservative classifier already calls it
  // live-out; the copy requirement is the load-bearing part.)
  EXPECT_TRUE(Block.List.Uops[0].NeedsGprCopy);
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::LiveOutGlobal);
}

TEST(UsageAnalysis, TempClasses) {
  // Memory decomposition creates single-use temps.
  BlockBuilder B;
  AlphaInst Load;
  Load.Op = Op::LDQ;
  Load.Ra = 2;
  Load.Rb = 16;
  Load.Disp = 24;
  B.add(Load);
  B.opi(Op::ADDQ, 2, 1, 2);
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  ASSERT_EQ(Block.List.Uops.size(), 3u);
  EXPECT_TRUE(isTempValue(Block.List.Uops[0].Out));
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::Temp);
}

TEST(UsageAnalysis, CmovMaskTempIsCommGlobal) {
  // Four-op decomposition (basic ISA): the mask temp is read by both AND
  // and BIC — communication global, needing a scratch GPR home.
  BlockBuilder B;
  B.op(Op::CMOVEQ, 1, 2, 3);
  B.opi(Op::ADDQ, 3, 1, 3);
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Basic));
  EXPECT_EQ(Block.List.Uops[0].Kind, UopKind::CmovMask);
  EXPECT_EQ(Block.List.Uops[0].OutUsage, UsageClass::CommGlobal);
  EXPECT_TRUE(Block.List.Uops[0].NeedsGprCopy);
}

TEST(UsageAnalysis, CmovBlendImplicitOldUse) {
  // Two-op decomposition (modified ISA): the blend's implicit old-value
  // read forces the prior definition of the register operational.
  BlockBuilder B;
  B.opi(Op::ADDQ, 1, 1, 3); // old r3 def, otherwise dead before the cmov
  B.op(Op::CMOVEQ, 1, 2, 3);
  B.opi(Op::ADDQ, 3, 1, 3);
  LoweredBlock Block = analyze(B.Sb, config(iisa::IsaVariant::Modified));
  ASSERT_EQ(Block.List.Uops.size(), 4u);
  EXPECT_EQ(Block.List.Uops[2].Kind, UopKind::CmovBlend);
  // The old def is not "no user": the blend consumes it through the GPR.
  EXPECT_EQ(Block.List.Uops[0].NumUses, 1);
  EXPECT_NE(Block.List.Uops[0].OutUsage, UsageClass::NoUser);
}
