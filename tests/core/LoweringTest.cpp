//===- tests/core/LoweringTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Lowering.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::dbt;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

SourceInst src(uint64_t VAddr, AlphaInst Inst, bool Taken = false,
               uint64_t NextVAddr = 0) {
  SourceInst S;
  S.VAddr = VAddr;
  S.Inst = Inst;
  S.Taken = Taken;
  S.NextVAddr = NextVAddr ? NextVAddr : VAddr + 4;
  return S;
}

AlphaInst operate(Op O, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
  AlphaInst I;
  I.Op = O;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Rc = Rc;
  return I;
}

AlphaInst operatei(Op O, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
  AlphaInst I;
  I.Op = O;
  I.Ra = Ra;
  I.HasLit = true;
  I.Lit = Lit;
  I.Rc = Rc;
  return I;
}

AlphaInst memInst(Op O, uint8_t Ra, int32_t Disp, uint8_t Rb) {
  AlphaInst I;
  I.Op = O;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Disp = Disp;
  return I;
}

DbtConfig modifiedConfig() {
  DbtConfig C;
  C.Variant = iisa::IsaVariant::Modified;
  return C;
}

} // namespace

TEST(Lowering, MemorySplitOnDisplacement) {
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, memInst(Op::LDQ, 3, 0, 16)));
  Sb.Insts.push_back(src(0x1004, memInst(Op::LDQ, 4, 8, 16)));
  Sb.End = SbEndReason::MaxSize;
  Sb.FinalNextVAddr = 0x1008;

  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  // Zero-displacement load: one uop; disp 8: address add + load.
  ASSERT_EQ(B.List.Uops.size(), 3u);
  EXPECT_EQ(B.List.Uops[0].Kind, UopKind::Load);
  EXPECT_EQ(B.List.Uops[1].Kind, UopKind::Alu);
  EXPECT_EQ(B.List.Uops[1].Op, Op::LDA);
  EXPECT_TRUE(isTempValue(B.List.Uops[1].Out));
  EXPECT_EQ(B.List.Uops[2].Kind, UopKind::Load);
  EXPECT_EQ(B.List.Uops[2].In2.Id, B.List.Uops[1].Out);
  // V-credit: the address add leads its source instruction.
  EXPECT_EQ(B.List.Uops[1].VCredit, 1);
  EXPECT_EQ(B.List.Uops[2].VCredit, 0);
}

TEST(Lowering, NoSplitMode) {
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, memInst(Op::LDQ, 3, 8, 16)));
  Sb.End = SbEndReason::MaxSize;
  DbtConfig C = modifiedConfig();
  C.SplitMemoryOps = false;
  LoweredBlock B = lower(Sb, C).take();
  ASSERT_EQ(B.List.Uops.size(), 1u);
  EXPECT_EQ(B.List.Uops[0].MemDisp, 8);
}

TEST(Lowering, CmovTwoOpDecomposition) {
  // The modified ISA's default: the paper's two-instruction decomposition
  // (mask + blend through the readable destination-GPR field).
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, operate(Op::CMOVEQ, 1, 2, 3)));
  Sb.End = SbEndReason::MaxSize;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.List.Uops.size(), 2u);
  EXPECT_EQ(B.List.Uops[0].Kind, UopKind::CmovMask);
  EXPECT_EQ(B.List.Uops[1].Kind, UopKind::CmovBlend);
  EXPECT_EQ(B.List.Uops[1].Out, ValueId(3));
  EXPECT_EQ(B.List.Uops[1].In1.Id, B.List.Uops[0].Out);
  EXPECT_EQ(B.List.Uops[0].VCredit, 1);
  EXPECT_EQ(B.List.Uops[1].VCredit, 0);
}

TEST(Lowering, CmovFourOpDecomposition) {
  // The basic ISA (and modified with CmovTwoOp off) uses the generic
  // mask/and/bic/bis expansion.
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, operate(Op::CMOVEQ, 1, 2, 3)));
  Sb.End = SbEndReason::MaxSize;
  for (auto Make : {+[] {
                      DbtConfig C;
                      C.Variant = iisa::IsaVariant::Basic;
                      return C;
                    },
                    +[] {
                      DbtConfig C;
                      C.Variant = iisa::IsaVariant::Modified;
                      C.CmovTwoOp = false;
                      return C;
                    }}) {
    LoweredBlock B = lower(Sb, Make()).take();
    ASSERT_EQ(B.List.Uops.size(), 4u);
    EXPECT_EQ(B.List.Uops[0].Kind, UopKind::CmovMask);
    EXPECT_EQ(B.List.Uops[1].Op, Op::AND);
    EXPECT_EQ(B.List.Uops[2].Op, Op::BIC);
    EXPECT_EQ(B.List.Uops[3].Op, Op::BIS);
    EXPECT_EQ(B.List.Uops[3].Out, ValueId(3));
    // The mask temp feeds both AND and BIC.
    EXPECT_EQ(B.List.Uops[1].In2.Id, B.List.Uops[0].Out);
    EXPECT_EQ(B.List.Uops[2].In2.Id, B.List.Uops[0].Out);
    // Only the first carries the V-credit.
    EXPECT_EQ(B.List.Uops[0].VCredit, 1);
    EXPECT_EQ(B.List.Uops[3].VCredit, 0);
  }
}

TEST(Lowering, StraightKeepsCmovWhole) {
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, operate(Op::CMOVEQ, 1, 2, 3)));
  Sb.End = SbEndReason::MaxSize;
  DbtConfig C;
  C.Variant = iisa::IsaVariant::Straight;
  LoweredBlock B = lower(Sb, C).take();
  ASSERT_EQ(B.List.Uops.size(), 1u);
  EXPECT_EQ(B.List.Uops[0].Op, Op::CMOVEQ);
}

TEST(Lowering, NopsRemovedWithoutCredit) {
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, operate(Op::BIS, 31, 31, 31))); // NOP
  Sb.Insts.push_back(src(0x1004, operatei(Op::ADDQ, 1, 1, 1)));
  Sb.End = SbEndReason::MaxSize;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.List.Uops.size(), 1u);
  EXPECT_EQ(B.NopsRemoved, 1u);
  // NOPs are excluded from V-ISA characteristics entirely (Section 4.4).
  EXPECT_EQ(B.List.Uops[0].VCredit, 1);
}

TEST(Lowering, StraightenedBrCarriesCredit) {
  AlphaInst Br;
  Br.Op = Op::BR;
  Br.Ra = 31;
  Br.Disp = 2;
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, Br, true, 0x100C));
  Sb.Insts.push_back(src(0x100C, operatei(Op::ADDQ, 1, 1, 1)));
  Sb.End = SbEndReason::MaxSize;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.List.Uops.size(), 1u);
  // The removed BR is real retired work; its credit lands on the add.
  EXPECT_EQ(B.List.Uops[0].VCredit, 2);
  EXPECT_EQ(B.NopsRemoved, 1u);
}

TEST(Lowering, TakenSideExitReversed) {
  AlphaInst Beq;
  Beq.Op = Op::BEQ;
  Beq.Ra = 1;
  Beq.Disp = 4;
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, Beq, /*Taken=*/true, 0x1014));
  Sb.Insts.push_back(src(0x1014, operatei(Op::ADDQ, 1, 1, 1)));
  Sb.End = SbEndReason::MaxSize;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.SideExits.size(), 1u);
  const Uop &Cond = B.List.Uops[B.SideExits[0].UopIdx];
  EXPECT_EQ(Cond.Op, Op::BNE); // reversed
  EXPECT_EQ(B.SideExits[0].ExitVAddr, 0x1004u); // exits to fall-through
}

TEST(Lowering, NotTakenSideExitKeepsSense) {
  AlphaInst Beq;
  Beq.Op = Op::BEQ;
  Beq.Ra = 1;
  Beq.Disp = 4;
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, Beq, /*Taken=*/false));
  Sb.Insts.push_back(src(0x1004, operatei(Op::ADDQ, 1, 1, 1)));
  Sb.End = SbEndReason::MaxSize;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.SideExits.size(), 1u);
  EXPECT_EQ(B.List.Uops[B.SideExits[0].UopIdx].Op, Op::BEQ);
  EXPECT_EQ(B.SideExits[0].ExitVAddr, 0x1014u); // branch target
}

TEST(Lowering, FinalBackwardBranchNotReversed) {
  AlphaInst Bne;
  Bne.Op = Op::BNE;
  Bne.Ra = 17;
  Bne.Disp = -2;
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1004, operatei(Op::SUBQ, 17, 1, 17)));
  Sb.Insts.push_back(src(0x1008, Bne, /*Taken=*/true, 0x1004));
  Sb.End = SbEndReason::BackwardTaken;
  Sb.FinalNextVAddr = 0x1004;
  LoweredBlock B = lower(Sb, modifiedConfig()).take();
  ASSERT_EQ(B.SideExits.size(), 1u);
  EXPECT_EQ(B.List.Uops[B.SideExits[0].UopIdx].Op, Op::BNE);
  EXPECT_EQ(B.SideExits[0].ExitVAddr, 0x1004u); // the taken (hot) target
}

TEST(Lowering, JsrEmitsSaveRetPushRasAndEndJump) {
  AlphaInst Jsr;
  Jsr.Op = Op::JSR;
  Jsr.Ra = 26;
  Jsr.Rb = 27;
  Superblock Sb;
  Sb.EntryVAddr = 0x1000;
  Sb.Insts.push_back(src(0x1000, Jsr, true, 0x4000));
  Sb.End = SbEndReason::IndirectJump;
  Sb.FinalNextVAddr = 0x4000;

  DbtConfig C = modifiedConfig();
  C.Chaining = ChainPolicy::SwPredRas;
  LoweredBlock B = lower(Sb, C).take();
  ASSERT_EQ(B.List.Uops.size(), 3u);
  EXPECT_EQ(B.List.Uops[0].Kind, UopKind::SaveRet);
  EXPECT_EQ(B.List.Uops[0].Out, ValueId(26));
  EXPECT_EQ(B.List.Uops[0].EmbAddr, 0x1004u);
  EXPECT_EQ(B.List.Uops[1].Kind, UopKind::PushRas);
  EXPECT_EQ(B.List.Uops[2].Kind, UopKind::EndJump);
  EXPECT_EQ(B.List.Uops[2].In1.Id, ValueId(27));

  // Without the RAS policy there is no push.
  C.Chaining = ChainPolicy::SwPredNoRas;
  LoweredBlock B2 = lower(Sb, C).take();
  ASSERT_EQ(B2.List.Uops.size(), 2u);
  EXPECT_EQ(B2.List.Uops[1].Kind, UopKind::EndJump);
}

TEST(Lowering, ReverseCondBranchTable) {
  EXPECT_EQ(reverseCondBranch(Op::BEQ), Op::BNE);
  EXPECT_EQ(reverseCondBranch(Op::BNE), Op::BEQ);
  EXPECT_EQ(reverseCondBranch(Op::BLT), Op::BGE);
  EXPECT_EQ(reverseCondBranch(Op::BGE), Op::BLT);
  EXPECT_EQ(reverseCondBranch(Op::BLE), Op::BGT);
  EXPECT_EQ(reverseCondBranch(Op::BGT), Op::BLE);
  EXPECT_EQ(reverseCondBranch(Op::BLBC), Op::BLBS);
  EXPECT_EQ(reverseCondBranch(Op::BLBS), Op::BLBC);
}
