//===- tests/workloads/WorkloadsTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic SPEC stand-ins: every workload must run to HALT under the
/// reference interpreter, be deterministic, produce a nonzero checksum,
/// and exhibit the control-flow profile its namesake was chosen for.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>

using namespace ildp;
using namespace ildp::workloads;

namespace {

struct RunProfile {
  uint64_t Insts = 0;
  uint64_t Checksum = 0;
  uint64_t CondBranches = 0;
  uint64_t IndirectJumps = 0; // JMP + JSR
  uint64_t Returns = 0;
  uint64_t Calls = 0; // BSR + JSR
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Muls = 0;
  uint64_t Cmovs = 0;
};

RunProfile profileRun(const std::string &Name, unsigned Scale = 1) {
  GuestMemory Mem;
  WorkloadImage Img = buildWorkload(Name, Mem, Scale);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  RunProfile P;
  for (;;) {
    StepInfo Info = Interp.step();
    EXPECT_NE(Info.Status, StepStatus::Trapped)
        << Name << " trapped at 0x" << std::hex << Info.Pc;
    if (Info.Status == StepStatus::Trapped)
      break;
    ++P.Insts;
    using alpha::InstKind;
    switch (Info.Inst.info().Kind) {
    case InstKind::CondBranch:
      ++P.CondBranches;
      break;
    case InstKind::Jmp:
      ++P.IndirectJumps;
      break;
    case InstKind::Jsr:
      ++P.IndirectJumps;
      ++P.Calls;
      break;
    case InstKind::Bsr:
      ++P.Calls;
      break;
    case InstKind::Ret:
      ++P.Returns;
      break;
    case InstKind::Load:
      ++P.Loads;
      break;
    case InstKind::Store:
      ++P.Stores;
      break;
    case InstKind::Mul:
      ++P.Muls;
      break;
    case InstKind::CondMove:
      ++P.Cmovs;
      break;
    default:
      break;
    }
    if (Info.Status == StepStatus::Halted)
      break;
    EXPECT_LT(P.Insts, 100'000'000u) << Name << " did not halt";
    if (P.Insts >= 100'000'000u)
      break;
  }
  P.Checksum = Interp.state().readGpr(alpha::RegV0);
  return P;
}

class WorkloadRuns : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(WorkloadRuns, HaltsDeterministicallyWithChecksum) {
  const std::string &Name = GetParam();
  RunProfile A = profileRun(Name);
  EXPECT_GT(A.Insts, 50'000u) << "workload too short to exercise the DBT";
  EXPECT_LT(A.Insts, 10'000'000u) << "workload too long for the suite";
  EXPECT_NE(A.Checksum, 0u);

  RunProfile B = profileRun(Name);
  EXPECT_EQ(A.Insts, B.Insts);
  EXPECT_EQ(A.Checksum, B.Checksum);
}

TEST_P(WorkloadRuns, ScaleExtendsExecution) {
  const std::string &Name = GetParam();
  RunProfile S1 = profileRun(Name, 1);
  RunProfile S2 = profileRun(Name, 2);
  EXPECT_GT(S2.Insts, S1.Insts + S1.Insts / 2);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadRuns,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadProfiles, MatchTheirNamesakes) {
  std::map<std::string, RunProfile> P;
  for (const std::string &Name : workloadNames())
    P[Name] = profileRun(Name);

  // gap and perlbmk are indirect-dispatch interpreters.
  EXPECT_GT(P["gap"].IndirectJumps * 20, P["gap"].Insts);
  EXPECT_GT(P["perlbmk"].IndirectJumps * 25, P["perlbmk"].Insts);
  // perlbmk and parser are return-heavy.
  EXPECT_GT(P["perlbmk"].Returns * 25, P["perlbmk"].Insts);
  EXPECT_GT(P["parser"].Returns * 25, P["parser"].Insts);
  // vortex calls mostly through BSR (direct calls dominate indirect).
  EXPECT_GT(P["vortex"].Calls, P["vortex"].IndirectJumps * 2);
  // mcf is load-dominated pointer chasing (3 loads per 13-inst node visit).
  EXPECT_GT(P["mcf"].Loads * 5, P["mcf"].Insts);
  // bzip2 stores heavily (table shifting).
  EXPECT_GT(P["bzip2"].Stores * 12, P["bzip2"].Insts);
  // twolf multiplies (LCG) and swaps conditionally.
  EXPECT_GT(P["twolf"].Muls, 0u);
  EXPECT_GT(P["mcf"].Cmovs, 0u);
  EXPECT_GT(P["vpr"].Cmovs, 0u);
  // gcc is branchy.
  EXPECT_GT(P["gcc"].CondBranches * 8, P["gcc"].Insts);
  // Loop kernels have almost no indirect jumps.
  EXPECT_LT(P["gzip"].IndirectJumps, 10u);
  EXPECT_LT(P["vpr"].IndirectJumps, 10u);
}

TEST(WorkloadProfiles, DistinctChecksums) {
  // Different workloads must not accidentally share generators/state.
  std::map<uint64_t, std::string> Seen;
  for (const std::string &Name : workloadNames()) {
    RunProfile P = profileRun(Name);
    auto [It, Inserted] = Seen.emplace(P.Checksum, Name);
    EXPECT_TRUE(Inserted) << Name << " collides with " << It->second;
  }
}
