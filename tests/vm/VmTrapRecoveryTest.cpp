//===- tests/vm/VmTrapRecoveryTest.cpp ------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end precise trap recovery (Section 2.2): a fault injected into
/// hot translated code must yield exactly the architected state the
/// reference interpreter reaches at the same trap — including values the
/// basic ISA holds only in accumulators (recovered through the PEI table)
/// and the V-ISA PC of the trapping instruction.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::vm;
using Op = Opcode;

namespace {

/// A program whose hot loop walks an array and eventually runs off the
/// mapped region: the faulting load happens deep inside translated code,
/// mid-fragment, with plenty of in-flight accumulator state.
///
/// r16 walks; r17 counts down; the loop body creates locals (r2..r5) so
/// several architected registers live in accumulators at the PEI.
struct FaultProgram {
  GuestMemory Mem;
  uint64_t Entry;
  uint64_t LoopAddr = 0;

  FaultProgram() {
    Assembler Asm(0x10000);
    Asm.loadImm(16, 0x20000);
    Asm.loadImm(17, 4000); // far more iterations than mapped data
    Asm.movi(0, 9);
    auto Loop = Asm.createLabel("loop");
    Asm.bind(Loop);
    Asm.operatei(Op::ADDQ, 9, 3, 2);  // r2: local chain head
    Asm.operatei(Op::SLL, 2, 2, 3);   // r3: local
    Asm.ldq(4, 0, 16);                // the eventual faulter (PEI)
    Asm.operate(Op::XOR, 3, 4, 5);    // r5
    Asm.operate(Op::ADDQ, 9, 5, 9);   // checksum
    Asm.lda(16, 8, 16);
    Asm.operatei(Op::SUBL, 17, 1, 17);
    Asm.condBr(Op::BNE, 17, Loop);
    Asm.halt();
    std::vector<uint32_t> Words = Asm.finalize();
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(0x10000 + I * 4, Words[I]);
    Entry = 0x10000;
    LoopAddr = Asm.labelAddr(Loop);
    // Map only 8KB: the walk faults at 0x22000 after 1024 iterations —
    // long after the loop has become hot and translated.
    Mem.mapRegion(0x20000, 0x2000);
    for (unsigned I = 0; I != 1024; ++I)
      Mem.poke64(0x20000 + I * 8, I * 0x9E3779B97F4A7C15ull);
  }
};

/// Reference trap state from the interpreter.
void referenceTrap(ArchState &State, Trap &TrapInfo) {
  FaultProgram P;
  Interpreter Interp(P.Mem);
  Interp.state().Pc = P.Entry;
  StepInfo Last = Interp.run(1'000'000);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  State = Interp.state();
  TrapInfo = Last.TrapInfo;
}

class VmTrapRecovery
    : public ::testing::TestWithParam<iisa::IsaVariant> {};

} // namespace

TEST_P(VmTrapRecovery, PreciseStateAtFault) {
  ArchState Ref;
  Trap RefTrap;
  referenceTrap(Ref, RefTrap);
  ASSERT_EQ(RefTrap.Kind, TrapKind::MemUnmapped);

  FaultProgram P;
  VmConfig Config;
  Config.Dbt.Variant = GetParam();
  VirtualMachine Vm(P.Mem, P.Entry, Config);
  RunResult Result = Vm.run();
  ASSERT_EQ(Result.Reason, StopReason::Trapped);

  // The trap fired from translated code, not the interpreter.
  EXPECT_GT(Vm.stats().get("exit.trap"), 0u);
  EXPECT_GT(Vm.stats().get("tcache.fragments"), 0u);

  // Identity of the trap: V-ISA PC and faulting address.
  EXPECT_EQ(Result.Trap.TrapInfo.Kind, RefTrap.Kind);
  EXPECT_EQ(Result.Trap.TrapInfo.Pc, RefTrap.Pc);
  EXPECT_EQ(Result.Trap.TrapInfo.MemAddr, RefTrap.MemAddr);

  // Full architected register state, bit for bit.
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Result.Trap.Arch.readGpr(Reg), Ref.readGpr(Reg))
        << "register r" << Reg << " not precisely recovered";
  EXPECT_EQ(Result.Trap.Arch.Pc, Ref.Pc);
}

INSTANTIATE_TEST_SUITE_P(Variants, VmTrapRecovery,
                         ::testing::Values(iisa::IsaVariant::Basic,
                                           iisa::IsaVariant::Modified,
                                           iisa::IsaVariant::Straight),
                         [](const auto &Info) {
                           return std::string(
                               dbt::getVariantName(Info.param));
                         });

TEST(VmTrapRecovery, GentrapInHotCode) {
  // A GENTRAP that only fires after the surrounding code went hot.
  Assembler Asm(0x10000);
  Asm.loadImm(17, 200);
  Asm.movi(0, 9);
  auto Loop = Asm.createLabel("loop");
  auto Skip = Asm.createLabel("skip");
  Asm.bind(Loop);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.operatei(Op::CMPEQ, 17, 3, 2);
  Asm.condBr(Op::BEQ, 2, Skip);
  Asm.gentrap(); // fires when r17 == 3
  Asm.bind(Skip);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);

  // Reference.
  GuestMemory RefMem;
  for (size_t I = 0; I != Words.size(); ++I)
    RefMem.poke32(0x10000 + I * 4, Words[I]);
  Interpreter Ref(RefMem);
  Ref.state().Pc = 0x10000;
  StepInfo Last = Ref.run(100'000);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  ASSERT_EQ(Last.TrapInfo.Kind, TrapKind::Gentrap);

  VmConfig Config;
  Config.Dbt.Variant = iisa::IsaVariant::Basic;
  VirtualMachine Vm(Mem, 0x10000, Config);
  RunResult Result = Vm.run();
  ASSERT_EQ(Result.Reason, StopReason::Trapped);
  EXPECT_EQ(Result.Trap.TrapInfo.Kind, TrapKind::Gentrap);
  EXPECT_EQ(Result.Trap.TrapInfo.Pc, Last.TrapInfo.Pc);
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Result.Trap.Arch.readGpr(Reg), Ref.state().readGpr(Reg));
}

TEST(VmTrapRecovery, MisalignedAccessRecovered) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x20000);
  Asm.loadImm(17, 300);
  auto Loop = Asm.createLabel("loop");
  Asm.bind(Loop);
  Asm.ldq(2, 0, 16);
  Asm.operate(Op::ADDQ, 9, 2, 9);
  Asm.lda(16, 1, 16); // +1 each time: misaligns on the second iteration
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();

  auto Load = [&](GuestMemory &M) {
    for (size_t I = 0; I != Words.size(); ++I)
      M.poke32(0x10000 + I * 4, Words[I]);
    M.mapRegion(0x20000, 0x4000);
  };

  GuestMemory RefMem;
  Load(RefMem);
  Interpreter Ref(RefMem);
  Ref.state().Pc = 0x10000;
  StepInfo Last = Ref.run(100'000);
  ASSERT_EQ(Last.Status, StepStatus::Trapped);
  ASSERT_EQ(Last.TrapInfo.Kind, TrapKind::MemUnaligned);

  GuestMemory Mem;
  Load(Mem);
  VmConfig Config;
  Config.Dbt.Variant = iisa::IsaVariant::Modified;
  // Force a tiny threshold so even this short run goes hot... the default
  // of 50 would never trigger before the misalignment at iteration 2;
  // instead keep the default and accept interpreter-side trapping. To
  // exercise the translated path we lower the threshold to 1.
  Config.Dbt.HotThreshold = 1;
  VirtualMachine Vm(Mem, 0x10000, Config);
  RunResult Result = Vm.run();
  ASSERT_EQ(Result.Reason, StopReason::Trapped);
  EXPECT_EQ(Result.Trap.TrapInfo.Kind, TrapKind::MemUnaligned);
  EXPECT_EQ(Result.Trap.TrapInfo.Pc, Last.TrapInfo.Pc);
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Result.Trap.Arch.readGpr(Reg), Ref.state().readGpr(Reg));
}
