//===- tests/vm/VmConfigSweepTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-VM differential sweep over the translator's configuration axes:
/// superblock size limit (tiny limits force many fragments and dense
/// chaining), chaining policy (no-prediction / software prediction
/// without and with the dual-address RAS), and hot threshold. Every
/// combination must be semantically invisible — interpreter-exact final
/// state — while changing the fragment population in the expected
/// direction.
///
//===----------------------------------------------------------------------===//

#include "VmTestUtil.h"

#include "interp/Interpreter.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::vmtest;

namespace {

struct SweepCase {
  uint64_t Seed;
  iisa::IsaVariant Variant;
  unsigned MaxSb;
  dbt::ChainPolicy Chaining;
};

class VmConfigSweep : public ::testing::TestWithParam<SweepCase> {};

const char *variantName(iisa::IsaVariant V) {
  switch (V) {
  case iisa::IsaVariant::Basic:
    return "basic";
  case iisa::IsaVariant::Modified:
    return "modified";
  case iisa::IsaVariant::Straight:
    return "straight";
  }
  return "?";
}

const char *chainName(dbt::ChainPolicy C) {
  switch (C) {
  case dbt::ChainPolicy::NoPred:
    return "nopred";
  case dbt::ChainPolicy::SwPredNoRas:
    return "swpred";
  case dbt::ChainPolicy::SwPredRas:
    return "swras";
  }
  return "?";
}

/// Runs the seeded branchy program under \p Config; returns final state
/// equality with the reference interpreter plus the fragment count.
struct SweepResult {
  bool Match = false;
  uint64_t Fragments = 0;
  uint64_t Translated = 0;
};

SweepResult runSweep(uint64_t Seed, const vm::VmConfig &Config) {
  uint64_t Entry = 0;
  std::vector<uint32_t> Words = buildBranchyProgram(Seed, Entry);

  GuestMemory RefMem = loadBranchyEnv(Words, Seed);
  Interpreter Ref(RefMem);
  Ref.state().Pc = Entry;
  if (Ref.run(80'000'000).Status != StepStatus::Halted)
    return {};

  GuestMemory Mem = loadBranchyEnv(Words, Seed);
  vm::VirtualMachine Vm(Mem, Entry, Config);
  if (Vm.run().Reason != vm::StopReason::Halted)
    return {};

  SweepResult R;
  R.Match = true;
  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    R.Match &=
        Vm.interpreter().state().readGpr(Reg) == Ref.state().readGpr(Reg);
  for (unsigned I = 0; I != 64; ++I)
    R.Match &= Mem.load(DataBase + I * 8, 8).Value ==
               RefMem.load(DataBase + I * 8, 8).Value;
  R.Fragments = Vm.stats().get("tcache.fragments");
  R.Translated = Vm.stats().get("vm.vinsts_translated");
  return R;
}

} // namespace

TEST_P(VmConfigSweep, EveryConfigurationIsSemanticallyInvisible) {
  SweepCase Case = GetParam();
  vm::VmConfig Config;
  Config.Dbt.Variant = Case.Variant;
  Config.Dbt.MaxSuperblockInsts = Case.MaxSb;
  Config.Dbt.Chaining = Case.Chaining;
  SweepResult R = runSweep(Case.Seed, Config);
  EXPECT_TRUE(R.Match) << "seed " << Case.Seed;
  EXPECT_GT(R.Fragments, 0u);
  EXPECT_GT(R.Translated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, VmConfigSweep, ::testing::ValuesIn([] {
      std::vector<SweepCase> Cases;
      for (uint64_t Seed : {3ull, 7ull})
        for (auto Variant :
             {iisa::IsaVariant::Basic, iisa::IsaVariant::Modified,
              iisa::IsaVariant::Straight})
          for (unsigned MaxSb : {8u, 30u, 200u})
            for (auto Chaining :
                 {dbt::ChainPolicy::NoPred, dbt::ChainPolicy::SwPredNoRas,
                  dbt::ChainPolicy::SwPredRas})
              Cases.push_back({Seed, Variant, MaxSb, Chaining});
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_" +
             variantName(Info.param.Variant) + "_sb" +
             std::to_string(Info.param.MaxSb) + "_" +
             chainName(Info.param.Chaining);
    });

TEST(VmConfigSweep, SmallerSuperblocksMakeMoreFragments) {
  // Direction check: an 8-instruction cap fragments the hot path into
  // strictly more (and shorter) fragments than the paper's 200 cap.
  vm::VmConfig Small;
  Small.Dbt.Variant = iisa::IsaVariant::Modified;
  Small.Dbt.MaxSuperblockInsts = 8;
  vm::VmConfig Large = Small;
  Large.Dbt.MaxSuperblockInsts = 200;
  SweepResult RS = runSweep(5, Small);
  SweepResult RL = runSweep(5, Large);
  ASSERT_TRUE(RS.Match);
  ASSERT_TRUE(RL.Match);
  EXPECT_GT(RS.Fragments, RL.Fragments);
}

TEST(VmConfigSweep, LowerHotThresholdTranslatesMoreOfTheRun) {
  // Threshold 3 qualifies paths almost immediately; threshold 5000 leaves
  // the short program entirely interpreted.
  vm::VmConfig Eager;
  Eager.Dbt.Variant = iisa::IsaVariant::Modified;
  Eager.Dbt.HotThreshold = 3;
  vm::VmConfig Never = Eager;
  Never.Dbt.HotThreshold = 5000;
  SweepResult RE = runSweep(9, Eager);
  SweepResult RN = runSweep(9, Never);
  ASSERT_TRUE(RE.Match);
  ASSERT_TRUE(RN.Match);
  EXPECT_GT(RE.Translated, RN.Translated);
}
