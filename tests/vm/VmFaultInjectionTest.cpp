//===- tests/vm/VmFaultInjectionTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-VM graceful degradation (DESIGN.md §9): with deterministic faults
/// injected at every guarded pipeline site — synchronously and through the
/// background translation workers — the VM must fall back to
/// interpretation and finish every workload with architected state
/// bit-identical to the pure interpreter, while the robust.* statistics
/// account for every injected fault. Also covers recovery after transient
/// faults, the retry/backoff/blacklist feedback loop end to end, and
/// rejected persisted-cache imports.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/FaultInjector.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::vm;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

/// Reference final state from the plain interpreter.
ArchState referenceRun(const std::string &Name) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  EXPECT_EQ(Interp.run(2'000'000'000ull).Status, StepStatus::Halted);
  return Interp.state();
}

struct FaultedOutcome {
  ArchState Arch;
  StatisticSet Stats;
};

/// Runs \p Name under \p Config (whose Dbt.Fault is already armed) and
/// returns the final state plus statistics.
FaultedOutcome runFaulted(const std::string &Name, VmConfig Config) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Name;
  return {Vm.interpreter().state(), Vm.stats()};
}

void expectSameGprs(const ArchState &Got, const ArchState &Ref,
                    const std::string &Context) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

struct SiteCase {
  FaultSite Site;
  bool Async;
};

class VmFaultMatrix : public ::testing::TestWithParam<SiteCase> {};

} // namespace

// Every workload, every site, permanent faults: the VM must degrade to a
// pure interpreter with bit-identical architected state, and robust.*
// must account for every fired injection.
TEST_P(VmFaultMatrix, PermanentFaultDegradesToInterpreterOnAllWorkloads) {
  SiteCase Case = GetParam();
  for (const std::string &W : workloads::workloadNames()) {
    ArchState Ref = referenceRun(W);

    FaultInjector Inj;
    Inj.armAlways(Case.Site);
    VmConfig Config;
    Config.Dbt.Fault = &Inj;
    if (Case.Async) {
      Config.AsyncTranslate = true;
      Config.TranslateWorkers = 2;
    }
    FaultedOutcome Out = runFaulted(W, Config);
    std::string Context =
        W + "/" + dbt::getFaultSiteName(Case.Site) +
        (Case.Async ? "/async" : "/sync");
    expectSameGprs(Out.Arch, Ref, Context);

    // No fragment survives a permanent fault; every fired injection is a
    // counted bailout and every bailout carries the injected-fault reason.
    EXPECT_EQ(Out.Stats.get("tcache.fragments"), 0u) << Context;
    EXPECT_GT(Out.Stats.get("robust.bailouts"), 0u) << Context;
    EXPECT_EQ(Out.Stats.get("robust.bailouts"), Inj.firedCount(Case.Site))
        << Context;
    EXPECT_EQ(Out.Stats.get("robust.bailout.injected_fault"),
              Out.Stats.get("robust.bailouts"))
        << Context;
    EXPECT_GT(Out.Stats.get("robust.fallback_insts"), 0u) << Context;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SyncSites, VmFaultMatrix,
    ::testing::Values(SiteCase{FaultSite::Decode, false},
                      SiteCase{FaultSite::Lowering, false},
                      SiteCase{FaultSite::Usage, false},
                      SiteCase{FaultSite::StrandAlloc, false},
                      SiteCase{FaultSite::CodeGen, false},
                      SiteCase{FaultSite::Assemble, false}),
    [](const ::testing::TestParamInfo<SiteCase> &Info) {
      return std::string(dbt::getFaultSiteName(Info.param.Site));
    });

INSTANTIATE_TEST_SUITE_P(
    AsyncSites, VmFaultMatrix,
    ::testing::Values(SiteCase{FaultSite::Decode, true},
                      SiteCase{FaultSite::Lowering, true},
                      SiteCase{FaultSite::Usage, true},
                      SiteCase{FaultSite::StrandAlloc, true},
                      SiteCase{FaultSite::CodeGen, true},
                      SiteCase{FaultSite::Assemble, true},
                      SiteCase{FaultSite::AsyncWorker, true}),
    [](const ::testing::TestParamInfo<SiteCase> &Info) {
      return std::string(dbt::getFaultSiteName(Info.param.Site));
    });

TEST(VmFaultInjection, TransientFaultsRecoverAndStillTranslate) {
  ArchState Ref = referenceRun("gzip");
  FaultInjector Inj;
  Inj.armCount(FaultSite::Lowering, 2); // Only the first two attempts fail.
  VmConfig Config;
  Config.Dbt.Fault = &Inj;
  FaultedOutcome Out = runFaulted("gzip", Config);
  expectSameGprs(Out.Arch, Ref, "gzip/transient");
  EXPECT_EQ(Out.Stats.get("robust.bailouts"), 2u);
  EXPECT_EQ(Out.Stats.get("robust.bailout.injected_fault"), 2u);
  // Later attempts succeed: the VM still ends up running translated code.
  EXPECT_GT(Out.Stats.get("tcache.fragments"), 0u);
  EXPECT_GT(Out.Stats.get("vm.vinsts_translated"), 0u);
  EXPECT_EQ(Out.Stats.get("robust.blacklisted_pcs"), 0u);
}

TEST(VmFaultInjection, RandomFaultScheduleStaysCorrectSyncAndAsync) {
  for (const std::string &W : {std::string("gzip"), std::string("vortex")}) {
    ArchState Ref = referenceRun(W);
    for (bool Async : {false, true}) {
      FaultInjector Inj;
      Inj.armRandom(FaultSite::CodeGen, /*Seed=*/0xC0FFEE, 1, 3);
      VmConfig Config;
      Config.Dbt.Fault = &Inj;
      if (Async) {
        Config.AsyncTranslate = true;
        Config.TranslateWorkers = 3;
      }
      FaultedOutcome Out = runFaulted(W, Config);
      std::string Context = W + (Async ? "/random/async" : "/random/sync");
      expectSameGprs(Out.Arch, Ref, Context);
      EXPECT_EQ(Out.Stats.get("robust.bailouts"),
                Inj.firedCount(FaultSite::CodeGen))
          << Context;
    }
  }
}

TEST(VmFaultInjection, RetryBackoffThenBlacklistEndToEnd) {
  // One hot loop whose translation always faults: with HotThreshold 4,
  // backoff x2 and a 2-retry budget, the loop head qualifies at counts
  // 4, 8, and 16, fails three times, and is blacklisted — all within a
  // 400-iteration run.
  using Op = alpha::Opcode;
  alpha::Assembler Asm(0x10000);
  Asm.movi(1, 0);
  Asm.loadImm(2, 400);
  auto Head = Asm.createLabel("head");
  Asm.bind(Head);
  Asm.operatei(Op::ADDQ, 1, 3, 1);
  Asm.operatei(Op::SUBQ, 2, 1, 2);
  Asm.condBr(Op::BNE, 2, Head);
  Asm.mov(1, alpha::RegV0);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();

  auto Load = [&] {
    GuestMemory Mem;
    for (size_t I = 0; I != Words.size(); ++I)
      Mem.poke32(0x10000 + I * 4, Words[I]);
    return Mem;
  };

  GuestMemory RefMem = Load();
  Interpreter RefInterp(RefMem);
  RefInterp.state().Pc = 0x10000;
  ASSERT_EQ(RefInterp.run(1'000'000).Status, StepStatus::Halted);

  FaultInjector Inj;
  Inj.armAlways(FaultSite::CodeGen);
  VmConfig Config;
  Config.Dbt.Fault = &Inj;
  Config.Dbt.HotThreshold = 4;
  Config.MaxTranslateRetries = 2;
  Config.BlacklistBackoff = 2;
  GuestMemory Mem = Load();
  VirtualMachine Vm(Mem, 0x10000, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);

  expectSameGprs(Vm.interpreter().state(), RefInterp.state(), "blacklist");
  const StatisticSet &S = Vm.stats();
  EXPECT_EQ(S.get("robust.bailouts"), 3u);    // Initial try + 2 retries.
  EXPECT_EQ(S.get("robust.retries"), 2u);
  EXPECT_EQ(S.get("robust.blacklisted_pcs"), 1u);
  EXPECT_EQ(S.get("tcache.fragments"), 0u);
}

TEST(VmFaultInjection, RejectedPersistImportDegradesToColdStart) {
  std::string Path = testing::TempDir() + "/fault_import.tcache";
  std::remove(Path.c_str());

  // Seed a valid cache file.
  VmConfig SaveConfig;
  SaveConfig.PersistPath = Path;
  FaultedOutcome Cold = runFaulted("gzip", SaveConfig);
  ASSERT_EQ(Cold.Stats.get("persist.save_ok"), 1u);

  // Reload with the import site armed: the file is intact, but the import
  // is rejected and the run degrades to a correct cold start.
  ArchState Ref = referenceRun("gzip");
  FaultInjector Inj;
  Inj.armAlways(FaultSite::PersistImport);
  VmConfig Config;
  Config.PersistPath = Path;
  Config.PersistSave = false;
  Config.Dbt.Fault = &Inj;
  FaultedOutcome Out = runFaulted("gzip", Config);
  expectSameGprs(Out.Arch, Ref, "persist-import");
  EXPECT_EQ(Out.Stats.get("persist.import_rejected"), 1u);
  EXPECT_EQ(Out.Stats.get("persist.import_rejected.injected-fault"), 1u);
  EXPECT_EQ(Out.Stats.get("persist.load_ok"), 0u);
  EXPECT_EQ(Out.Stats.get("persist.fragments_imported"), 0u);
  // Cold start: the run translated its own fragments from scratch.
  EXPECT_GT(Out.Stats.get("dbt.fragments"), 0u);
  EXPECT_EQ(Inj.firedCount(FaultSite::PersistImport), 1u);
  std::remove(Path.c_str());
}

TEST(VmFaultInjection, DisarmedInjectorChangesNothing) {
  // An attached-but-disarmed injector must not perturb execution or any
  // non-robust statistic relative to a run without one.
  VmConfig Plain;
  FaultedOutcome A = runFaulted("perlbmk", Plain);

  FaultInjector Inj;
  VmConfig WithInj;
  WithInj.Dbt.Fault = &Inj;
  FaultedOutcome B = runFaulted("perlbmk", WithInj);

  expectSameGprs(B.Arch, A.Arch, "disarmed");
  EXPECT_EQ(B.Stats.get("tcache.fragments"), A.Stats.get("tcache.fragments"));
  EXPECT_EQ(B.Stats.get("vm.guest_insts"), A.Stats.get("vm.guest_insts"));
  EXPECT_EQ(B.Stats.get("robust.bailouts"), 0u);
  EXPECT_EQ(A.Stats.get("robust.bailouts"), 0u);
  // The injector still observed the pipeline passing its sites.
  EXPECT_GT(Inj.hitCount(FaultSite::Lowering), 0u);
  EXPECT_EQ(Inj.totalFired(), 0u);
}
