//===- tests/vm/VmDispatchTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-indirect control flow through the VM (paper Section 3.2):
/// software jump prediction must hit on monomorphic indirect jumps, miss
/// into the dispatch code on polymorphic ones, and the dual-address RAS
/// must absorb call/return pairs even with multiple call sites. Each
/// scenario is also checked for architected-state equivalence against the
/// plain interpreter.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "interp/Interpreter.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::vm;
using Op = Opcode;

namespace {

GuestMemory loadProgram(const Assembler &Asm, std::vector<uint32_t> Words,
                        bool MapData = false) {
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
  if (MapData)
    Mem.mapRegion(0x20000, 0x1000);
  return Mem;
}

/// Runs \p Asm under the plain interpreter and returns final r9.
uint64_t referenceR9(const Assembler &Asm, std::vector<uint32_t> Words,
                     bool MapData = false) {
  GuestMemory Mem = loadProgram(Asm, Words, MapData);
  Interpreter Interp(Mem);
  Interp.state().Pc = Asm.baseAddr();
  StepInfo Last = Interp.run(10'000'000);
  EXPECT_EQ(Last.Status, StepStatus::Halted);
  return Interp.state().readGpr(9);
}

/// Runs \p Asm under the co-designed VM (modified ISA, dual-RAS chaining)
/// and returns the VM so callers can inspect stats.
struct VmRun {
  uint64_t R9 = 0;
  uint64_t PredictHit = 0;
  uint64_t PredictMiss = 0;
  uint64_t DispatchCalls = 0;
  uint64_t ReturnHit = 0;
  uint64_t ReturnMiss = 0;
  uint64_t RasPush = 0;
};

VmRun runVm(const Assembler &Asm, std::vector<uint32_t> Words,
            bool MapData = false) {
  GuestMemory Mem = loadProgram(Asm, std::move(Words), MapData);
  VmConfig Config;
  Config.Dbt.Variant = iisa::IsaVariant::Modified;
  Config.Dbt.Chaining = dbt::ChainPolicy::SwPredRas;
  VirtualMachine Vm(Mem, Asm.baseAddr(), Config);
  RunResult Result = Vm.run();
  EXPECT_EQ(Result.Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  VmRun R;
  R.R9 = Vm.interpreter().state().readGpr(9);
  R.PredictHit =
      S.get("exit.predict_hit") + S.get("exit.predict_hit_untranslated");
  R.PredictMiss = S.get("exit.predict_miss");
  R.DispatchCalls = S.get("dispatch.calls");
  R.ReturnHit = S.get("exit.return_hit");
  R.ReturnMiss = S.get("exit.return_miss");
  R.RasPush = S.get("ras.push");
  return R;
}

} // namespace

TEST(VmDispatch, MonomorphicIndirectJumpHitsSoftwarePrediction) {
  // A hot loop whose body transfers through a register-indirect jump that
  // always lands on the same target: the embedded jump_predict address is
  // always right, so after translation nearly every indirect transfer is
  // a predict hit, and the dispatch code is (almost) never entered.
  Assembler Asm(0x10000);
  Asm.loadImm(17, 400);
  auto Head = Asm.createLabel("head");
  auto Cont = Asm.createLabel("cont");
  Asm.bind(Head);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.loadLabelAddr(22, Cont);
  Asm.jmp(RegZero, 22);
  Asm.bind(Cont);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Head);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();

  VmRun R = runVm(Asm, Words);
  EXPECT_EQ(R.R9, referenceR9(Asm, Words));
  EXPECT_GT(R.PredictHit, 200u);
  // Warm-up transfers before translation may miss; steady state must not.
  EXPECT_LT(R.PredictMiss, 20u);
  EXPECT_GT(R.PredictHit, 10 * (R.PredictMiss ? R.PredictMiss : 1));
}

TEST(VmDispatch, PolymorphicIndirectJumpFallsBackToDispatch) {
  // The indirect target alternates between two continuations every
  // iteration (a jump-table idiom). Whichever target the recorded
  // superblock embeds, it is wrong about half the time: predict misses
  // must show up and each miss must route through the dispatch code.
  Assembler Asm(0x10000);
  auto T1 = Asm.createLabel("t1");
  auto T2 = Asm.createLabel("t2");
  auto Head = Asm.createLabel("head");
  auto Join = Asm.createLabel("join");
  Asm.loadImm(17, 400);
  Asm.loadImm(16, 0x20000); // Two-entry jump table.
  Asm.loadLabelAddr(22, T1);
  Asm.stq(22, 0, 16);
  Asm.loadLabelAddr(22, T2);
  Asm.stq(22, 8, 16);
  Asm.bind(Head);
  Asm.operatei(Op::AND, 17, 1, 21);    // index = iter & 1
  Asm.operate(Op::S8ADDQ, 21, 16, 21); // &table[index]
  Asm.ldq(22, 0, 21);
  Asm.jmp(RegZero, 22);
  Asm.bind(T1);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.br(Join);
  Asm.bind(T2);
  Asm.operatei(Op::ADDQ, 9, 3, 9);
  Asm.bind(Join);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Head);
  Asm.halt();
  std::vector<uint32_t> Words = Asm.finalize();

  VmRun R = runVm(Asm, Words, /*MapData=*/true);
  EXPECT_EQ(R.R9, referenceR9(Asm, Words, /*MapData=*/true));
  // Roughly half of ~350 post-translation transfers miss.
  EXPECT_GT(R.PredictMiss, 50u);
  // Every miss runs the VM's dispatch code at its fixed I-PC.
  EXPECT_GE(R.DispatchCalls, R.PredictMiss);
}

TEST(VmDispatch, DualRasAbsorbsReturnsFromMultipleCallSites) {
  // One subroutine called alternately from two call sites: a single-entry
  // BTB keyed on the return's I-PC would mispredict every other return
  // (the paper's Section 4.3 pathology); the dual-address RAS pops the
  // correct pair per call and must hit nearly always.
  Assembler Asm(0x10000);
  auto Sub = Asm.createLabel("sub");
  auto Head = Asm.createLabel("head");
  Asm.loadImm(17, 300);
  Asm.bind(Head);
  Asm.bsr(RegRA, Sub); // Call site 1.
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.bsr(RegRA, Sub); // Call site 2 (different return address).
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Head);
  Asm.halt();
  Asm.bind(Sub);
  Asm.operatei(Op::ADDQ, 9, 2, 9);
  Asm.ret();
  std::vector<uint32_t> Words = Asm.finalize();

  VmRun R = runVm(Asm, Words);
  EXPECT_EQ(R.R9, referenceR9(Asm, Words));
  EXPECT_GT(R.RasPush, 400u); // ~600 calls, most in translated code.
  EXPECT_GT(R.ReturnHit, 400u);
  EXPECT_LT(R.ReturnMiss, 30u);
  EXPECT_GT(R.ReturnHit, 10 * (R.ReturnMiss ? R.ReturnMiss : 1));
}

TEST(VmDispatch, DeepCallChainStaysOnTheRasPath) {
  // Nested calls three deep, repeated: pushes and pops must stay matched
  // (LIFO) through translated code, so return misses stay rare even
  // though three frames are live at the deepest point.
  Assembler Asm(0x10000);
  auto F1 = Asm.createLabel("f1");
  auto F2 = Asm.createLabel("f2");
  auto F3 = Asm.createLabel("f3");
  auto Head = Asm.createLabel("head");
  Asm.loadImm(17, 300);
  Asm.bind(Head);
  Asm.bsr(RegRA, F1);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Head);
  Asm.halt();
  Asm.bind(F1);
  Asm.mov(RegRA, 23); // Save ra across the nested call.
  Asm.bsr(RegRA, F2);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.ret(23);
  Asm.bind(F2);
  Asm.mov(RegRA, 24);
  Asm.bsr(RegRA, F3);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.ret(24);
  Asm.bind(F3);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.ret();
  std::vector<uint32_t> Words = Asm.finalize();

  VmRun R = runVm(Asm, Words);
  EXPECT_EQ(R.R9, referenceR9(Asm, Words));
  EXPECT_GT(R.ReturnHit, 500u); // ~900 returns.
  EXPECT_LT(R.ReturnMiss, 60u);
}
