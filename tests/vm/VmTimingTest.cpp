//===- tests/vm/VmTimingTest.cpp ------------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-stack timing sanity: the paper's qualitative results must hold on
/// the real VM + timing models (determinism, sensible IPC ranges, correct
/// directional response to machine parameters).
///
//===----------------------------------------------------------------------===//

#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::vm;

namespace {

/// Runs a workload on the ILDP machine; returns the model for inspection.
uarch::PipelineStats runIldp(const std::string &Workload,
                             iisa::IsaVariant Variant, unsigned Pes,
                             unsigned CommLat, unsigned Accs = 4,
                             bool SmallCache = false) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
  VmConfig Config;
  Config.Dbt.Variant = Variant;
  Config.Dbt.NumAccumulators = Accs;
  uarch::IldpParams Params;
  Params.NumPEs = Pes;
  Params.CommLatency = CommLat;
  if (SmallCache)
    Params.useSmallDCache();
  uarch::IldpModel Model(Params);
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  Vm.setTimingModel(&Model);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  Model.finish();
  return Model.stats();
}

uarch::PipelineStats runSuper(const std::string &Workload,
                              iisa::IsaVariant Variant) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
  VmConfig Config;
  Config.Dbt.Variant = Variant;
  uarch::SuperscalarParams Params;
  uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/false);
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  Vm.setTimingModel(&Model);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted);
  Model.finish();
  return Model.stats();
}

} // namespace

TEST(VmTiming, Deterministic) {
  uarch::PipelineStats A =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0);
  uarch::PipelineStats B =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Insts, B.Insts);
  EXPECT_EQ(A.VInsts, B.VInsts);
}

TEST(VmTiming, IpcInPlausibleRange) {
  uarch::PipelineStats S = runIldp("gzip", iisa::IsaVariant::Modified, 8, 0);
  EXPECT_GT(S.ipc(), 0.2);
  EXPECT_LT(S.ipc(), 4.0);
  EXPECT_GT(S.nativeIpc(), S.ipc()); // more I-insts than V-insts
}

TEST(VmTiming, ModifiedBeatsBasic) {
  // Fewer copy instructions -> higher V-ISA IPC (the paper's central
  // basic-vs-modified result).
  uarch::PipelineStats Basic =
      runIldp("gzip", iisa::IsaVariant::Basic, 8, 0);
  uarch::PipelineStats Modified =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0);
  EXPECT_GT(Modified.ipc(), Basic.ipc());
}

TEST(VmTiming, CommunicationLatencyCostIsModest) {
  // Figure 9: two-cycle global communication costs little *on average* —
  // strand steering localizes most value traffic. Individual kernels with
  // a cross-strand loop-carried dependence (our synthetic gzip is exactly
  // that serial CRC loop) pay more; the paper's 3.4% figure is an
  // all-benchmark aggregate, so the test checks a basket.
  double Ratio = 0;
  const char *Basket[] = {"gzip", "crafty", "gap", "vpr"};
  for (const char *W : Basket) {
    uarch::PipelineStats Lat0 = runIldp(W, iisa::IsaVariant::Modified, 8, 0);
    uarch::PipelineStats Lat2 = runIldp(W, iisa::IsaVariant::Modified, 8, 2);
    EXPECT_GE(Lat2.Cycles + Lat2.Cycles / 50, Lat0.Cycles) << W;
    Ratio += double(Lat2.Cycles) / double(Lat0.Cycles);
  }
  Ratio /= std::size(Basket);
  // The paper's aggregate is 3.4% on whole SPEC programs; our stand-ins
  // are distilled kernels whose critical paths cross strands far more
  // often, so the tolerance here is wider (see EXPERIMENTS.md).
  EXPECT_LT(Ratio, 1.5);
}

TEST(VmTiming, FewerPesCostPerformance) {
  uarch::PipelineStats Pe8 =
      runIldp("crafty", iisa::IsaVariant::Modified, 8, 0);
  uarch::PipelineStats Pe4 =
      runIldp("crafty", iisa::IsaVariant::Modified, 4, 0);
  EXPECT_LE(Pe4.ipc(), Pe8.ipc() * 1.02);
}

TEST(VmTiming, SmallReplicatedCacheMostlyFine) {
  // Figure 9: the 8KB replicated D-cache loses little on these inputs.
  uarch::PipelineStats Big =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0, 4, false);
  uarch::PipelineStats Small =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0, 4, true);
  // Random replacement seeds can swing the comparison by a hair in either
  // direction; the claim is only "no big loss".
  EXPECT_GT(double(Small.Cycles), double(Big.Cycles) * 0.98);
  EXPECT_LT(double(Small.Cycles), double(Big.Cycles) * 1.3);
}

TEST(VmTiming, IldpTracksSuperscalarOnLoopCode) {
  // The headline result: translated accumulator code on the ILDP machine
  // achieves IPC comparable to the superscalar running straightened code.
  uarch::PipelineStats Ildp =
      runIldp("gzip", iisa::IsaVariant::Modified, 8, 0);
  uarch::PipelineStats Super = runSuper("gzip", iisa::IsaVariant::Straight);
  EXPECT_GT(Ildp.ipc(), Super.ipc() * 0.7);
  EXPECT_LT(Ildp.ipc(), Super.ipc() * 1.4);
}

TEST(VmTiming, OriginalRunProducesStats) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
  uarch::SuperscalarParams Params;
  uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/true);
  StepStatus Status =
      runOriginal(Mem, Img.EntryPc, &Model, 100'000'000, nullptr);
  EXPECT_EQ(Status, StepStatus::Halted);
  Model.finish();
  EXPECT_GT(Model.stats().VInsts, 100'000u);
  EXPECT_GT(Model.stats().ipc(), 0.3);
  EXPECT_LT(Model.stats().ipc(), 4.0);
}
