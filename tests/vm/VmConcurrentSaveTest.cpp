//===- tests/vm/VmConcurrentSaveTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two VMs saving into one cache store at the same time. The store's
/// save path is read-merge-write under a best-effort lock file: writers
/// of *different* images must both survive — whichever saves last adopts
/// the other's slot — and writers of the *same* image must leave one
/// valid slot (last writer wins per image). Either way the resulting file
/// is never torn: it round-trips and warm-starts every saved image with
/// zero translation work. Runs in the concurrency test binary so CI's
/// ThreadSanitizer job covers the lock/merge/rename protocol.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>

using namespace ildp;
using namespace ildp::vm;

namespace {

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// Runs \p Workload to completion with persistence at \p Path and returns
/// its stats. Each thread gets its own memory, VM, and stats; the store
/// file is the only shared resource.
StatisticSet runAndSave(const std::string &Workload,
                        const std::string &Path) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
  VmConfig Config;
  Config.PersistPath = Path;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Workload;
  return Vm.stats();
}

} // namespace

TEST(VmConcurrentSave, TwoImagesSavedConcurrentlyBothSurvive) {
  std::string Path = tempPath("concurrent-two.tstore");

  StatisticSet StatsA, StatsB;
  std::thread A([&] { StatsA = runAndSave("gzip", Path); });
  std::thread B([&] { StatsB = runAndSave("bzip2", Path); });
  A.join();
  B.join();
  EXPECT_EQ(StatsA.get("persist.save_ok"), 1u);
  EXPECT_EQ(StatsB.get("persist.save_ok"), 1u);

  // Whatever the interleaving, the store holds both images...
  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 2u);

  // ...and both warm-start from it with zero translation work.
  for (const char *W : {"gzip", "bzip2"}) {
    StatisticSet Warm = runAndSave(W, Path);
    EXPECT_EQ(Warm.get("persist.store_hit"), 1u) << W;
    EXPECT_EQ(Warm.get("dbt.fragments"), 0u) << W;
    EXPECT_EQ(Warm.get("dbt.cost.total"), 0u) << W;
  }
}

TEST(VmConcurrentSave, ManyWritersOneStore) {
  std::string Path = tempPath("concurrent-many.tstore");
  const char *Names[4] = {"gzip", "gcc", "mcf", "parser"};

  std::thread Threads[4];
  StatisticSet Stats[4];
  for (unsigned I = 0; I != 4; ++I)
    Threads[I] = std::thread(
        [&, I] { Stats[I] = runAndSave(Names[I], Path); });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_EQ(Stats[I].get("persist.save_ok"), 1u) << Names[I];

  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 4u);
  for (const char *W : Names) {
    StatisticSet Warm = runAndSave(W, Path);
    EXPECT_EQ(Warm.get("persist.store_hit"), 1u) << W;
    EXPECT_EQ(Warm.get("dbt.fragments"), 0u) << W;
  }
}

TEST(VmConcurrentSave, SameImageSavedConcurrentlyLeavesOneValidSlot) {
  std::string Path = tempPath("concurrent-same.tstore");

  std::thread A([&] { runAndSave("gzip", Path); });
  std::thread B([&] { runAndSave("gzip", Path); });
  A.join();
  B.join();

  // Identical runs produce identical slots; last writer wins and the
  // result is indistinguishable from a single save.
  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 1u);
  StatisticSet Warm = runAndSave("gzip", Path);
  EXPECT_EQ(Warm.get("persist.store_hit"), 1u);
  EXPECT_EQ(Warm.get("dbt.fragments"), 0u);
}
