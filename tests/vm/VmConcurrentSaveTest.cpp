//===- tests/vm/VmConcurrentSaveTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two VMs saving into one cache store at the same time. The store's
/// save path is read-merge-write under a best-effort lock file: writers
/// of *different* images must both survive — whichever saves last adopts
/// the other's slot — and writers of the *same* image must leave one
/// valid slot (last writer wins per image). Either way the resulting file
/// is never torn: it round-trips and warm-starts every saved image with
/// zero translation work. Runs in the concurrency test binary so CI's
/// ThreadSanitizer job covers the lock/merge/rename protocol.
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"
#include "persist/StoreLock.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>

#ifndef _WIN32
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;
#endif

using namespace ildp;
using namespace ildp::vm;

namespace {

std::string tempPath(const char *Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// Runs \p Workload to completion with persistence at \p Path and returns
/// its stats. Each thread gets its own memory, VM, and stats; the store
/// file is the only shared resource.
StatisticSet runAndSave(const std::string &Workload,
                        const std::string &Path) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
  VmConfig Config;
  Config.PersistPath = Path;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Workload;
  return Vm.stats();
}

} // namespace

TEST(VmConcurrentSave, TwoImagesSavedConcurrentlyBothSurvive) {
  std::string Path = tempPath("concurrent-two.tstore");

  StatisticSet StatsA, StatsB;
  std::thread A([&] { StatsA = runAndSave("gzip", Path); });
  std::thread B([&] { StatsB = runAndSave("bzip2", Path); });
  A.join();
  B.join();
  EXPECT_EQ(StatsA.get("persist.save_ok"), 1u);
  EXPECT_EQ(StatsB.get("persist.save_ok"), 1u);

  // Whatever the interleaving, the store holds both images...
  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 2u);

  // ...and both warm-start from it with zero translation work.
  for (const char *W : {"gzip", "bzip2"}) {
    StatisticSet Warm = runAndSave(W, Path);
    EXPECT_EQ(Warm.get("persist.store_hit"), 1u) << W;
    EXPECT_EQ(Warm.get("dbt.fragments"), 0u) << W;
    EXPECT_EQ(Warm.get("dbt.cost.total"), 0u) << W;
  }
}

TEST(VmConcurrentSave, ManyWritersOneStore) {
  std::string Path = tempPath("concurrent-many.tstore");
  const char *Names[4] = {"gzip", "gcc", "mcf", "parser"};

  std::thread Threads[4];
  StatisticSet Stats[4];
  for (unsigned I = 0; I != 4; ++I)
    Threads[I] = std::thread(
        [&, I] { Stats[I] = runAndSave(Names[I], Path); });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_EQ(Stats[I].get("persist.save_ok"), 1u) << Names[I];

  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 4u);
  for (const char *W : Names) {
    StatisticSet Warm = runAndSave(W, Path);
    EXPECT_EQ(Warm.get("persist.store_hit"), 1u) << W;
    EXPECT_EQ(Warm.get("dbt.fragments"), 0u) << W;
  }
}

// A writer SIGKILLed while holding "<path>.lock" must not wedge the
// store: the next live writer detects the dead holder, breaks the lock
// within one takeover (not the live-holder wait bound), counts it under
// persist.store_lock_broken, and every image still round-trips warm.
// The lock holder is a real separate process (ildp-crashhost
// --hold-lock), spawned with posix_spawn — fork() is unsafe in this
// sanitized multithreaded test binary.
#if !defined(_WIN32) && defined(ILDP_CRASHHOST_BIN)
TEST(VmConcurrentSave, KilledWriterLockIsRecovered) {
  std::string Path = tempPath("killed-writer.tstore");
  std::string LockPath = Path + ".lock";
  std::remove(LockPath.c_str());

  StatisticSet Seed = runAndSave("gzip", Path);
  EXPECT_EQ(Seed.get("persist.save_ok"), 1u);

  // Spawn the lock holder, capturing its stdout to observe "held".
  int Pipe[2];
  ASSERT_EQ(::pipe2(Pipe, O_CLOEXEC), 0);
  std::string Bin = ILDP_CRASHHOST_BIN;
  std::string A1 = "--hold-lock", A2 = "--store";
  char *Argv[] = {Bin.data(), A1.data(), A2.data(), Path.data(), nullptr};
  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  posix_spawn_file_actions_adddup2(&Actions, Pipe[1], STDOUT_FILENO);
  pid_t Pid = -1;
  int SpawnErr =
      ::posix_spawn(&Pid, Bin.c_str(), &Actions, nullptr, Argv, environ);
  posix_spawn_file_actions_destroy(&Actions);
  ::close(Pipe[1]);
  ASSERT_EQ(SpawnErr, 0);

  std::string Banner;
  char C;
  while (Banner.find('\n') == std::string::npos) {
    ssize_t N = ::read(Pipe[0], &C, 1);
    if (N < 0 && errno == EINTR)
      continue;
    ASSERT_GT(N, 0) << "lock holder exited before reporting";
    Banner.push_back(C);
  }
  ASSERT_EQ(Banner, "held\n");

  // Kill it mid-hold: the lock file survives, naming a corpse.
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  ASSERT_EQ(::waitpid(Pid, nullptr, 0), Pid);
  ::close(Pipe[0]);
  EXPECT_EQ(persist::StoreLock::readHolderPid(LockPath), long(Pid));

  // A live writer completes over the corpse's lock — bounded by one
  // takeover, nowhere near the 30 s live-holder wait.
  auto T0 = std::chrono::steady_clock::now();
  StatisticSet Stats = runAndSave("mcf", Path);
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_EQ(Stats.get("persist.save_ok"), 1u);
  EXPECT_GE(Stats.get("persist.store_lock_broken"), 1u);
  EXPECT_LT(TookMs, 20'000) << "dead lock not broken within one takeover";

  // The takeover removed the dead lock and the live save released its
  // own: no stale lock file survives.
  struct stat St;
  EXPECT_NE(::stat(LockPath.c_str(), &St), 0);

  // Old and new images both round-trip warm: the interrupted writer
  // never made it to the store file, and nothing was torn.
  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 2u);
  for (const char *W : {"gzip", "mcf"}) {
    StatisticSet Warm = runAndSave(W, Path);
    EXPECT_EQ(Warm.get("persist.store_hit"), 1u) << W;
    EXPECT_EQ(Warm.get("dbt.cost.total"), 0u) << W;
  }
}
#endif // !_WIN32 && ILDP_CRASHHOST_BIN

TEST(VmConcurrentSave, SameImageSavedConcurrentlyLeavesOneValidSlot) {
  std::string Path = tempPath("concurrent-same.tstore");

  std::thread A([&] { runAndSave("gzip", Path); });
  std::thread B([&] { runAndSave("gzip", Path); });
  A.join();
  B.join();

  // Identical runs produce identical slots; last writer wins and the
  // result is indistinguishable from a single save.
  persist::CacheStore Store;
  ASSERT_EQ(Store.open(Path), persist::StoreStatus::Ok);
  EXPECT_EQ(Store.imageCount(), 1u);
  StatisticSet Warm = runAndSave("gzip", Path);
  EXPECT_EQ(Warm.get("persist.store_hit"), 1u);
  EXPECT_EQ(Warm.get("dbt.fragments"), 0u);
}
