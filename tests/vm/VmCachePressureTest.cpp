//===- tests/vm/VmCachePressureTest.cpp -----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-VM soak of the bounded translation cache (DESIGN.md §10): with
/// VmConfig::CodeCacheBytes small enough to force constant eviction, every
/// workload must finish with architected state bit-identical to the pure
/// interpreter — synchronously and with background translation workers,
/// and also with the evict_select / unchain fault sites armed (which
/// degrade every eviction to a wholesale flush). The byte budget must hold
/// after every install (budget high-water ≤ budget), the chaining
/// invariant must hold at the end of every run, and a persisted cache
/// saved under pressure must warm-start a budgeted VM correctly.
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::vm;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

/// Small enough that every workload's hot working set constantly
/// collides (holds only a handful of the short fragments produced by the
/// shrunken superblock limit below), large enough that those fragments
/// still fit individually, so eviction — not the FragmentTooLarge
/// bailout — is the mechanism under test. Measured churn at this setting
/// is tens of thousands of evictions per workload.
constexpr uint64_t TinyBudget = 128;

/// Reference final state from the plain interpreter.
ArchState referenceRun(const std::string &Name) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  EXPECT_EQ(Interp.run(2'000'000'000ull).Status, StepStatus::Halted);
  return Interp.state();
}

void expectSameGprs(const ArchState &Got, const ArchState &Ref,
                    const std::string &Context) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

/// Tiny-budget base configuration: a low hot threshold and a tiny
/// superblock limit multiply the number of (small) fragments competing
/// for the budget.
VmConfig pressuredConfig() {
  VmConfig Config;
  Config.CodeCacheBytes = TinyBudget;
  Config.Dbt.HotThreshold = 4;
  Config.Dbt.MaxSuperblockInsts = 4;
  return Config;
}

struct PressureOutcome {
  ArchState Arch;
  StatisticSet Stats;
  size_t InvariantViolations = 0;
  uint64_t ResidentBytes = 0;
};

PressureOutcome runPressured(const std::string &Name, VmConfig Config) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Name;
  return {Vm.interpreter().state(), Vm.stats(),
          Vm.tcache().chainInvariantViolations(),
          Vm.tcache().totalBodyBytes()};
}

} // namespace

class VmCachePressureSoak : public ::testing::TestWithParam<bool> {};

// The tentpole acceptance soak: all workloads under a budget that forces
// heavy eviction, architected state bit-identical to pure interpretation.
TEST_P(VmCachePressureSoak, TinyBudgetMatchesInterpreterOnAllWorkloads) {
  bool Async = GetParam();
  for (const std::string &W : workloads::workloadNames()) {
    ArchState Ref = referenceRun(W);
    VmConfig Config = pressuredConfig();
    if (Async) {
      Config.AsyncTranslate = true;
      Config.TranslateWorkers = 2;
    }
    PressureOutcome Out = runPressured(W, Config);
    std::string Context = W + (Async ? "/async" : "/sync");
    expectSameGprs(Out.Arch, Ref, Context);

    // The budget held after every single install (the high-water mark is
    // refreshed on each one) and still holds at exit.
    EXPECT_LE(Out.Stats.get("cache.budget_high_water"), TinyBudget)
        << Context;
    EXPECT_LE(Out.ResidentBytes, TinyBudget) << Context;
    // No chained exit in any resident fragment targets a non-resident
    // entry, and exit records agree with their branch instructions.
    EXPECT_EQ(Out.InvariantViolations, 0u) << Context;
    // The budget actually bit: sustained eviction pressure, with bytes
    // accounted for every victim.
    EXPECT_GE(Out.Stats.get("cache.evictions"), 100u) << Context;
    EXPECT_GT(Out.Stats.get("cache.evicted_bytes"),
              Out.Stats.get("cache.evictions"))
        << Context;
    // Evicted-hot entries re-entered profiling and were translated again.
    EXPECT_GT(Out.Stats.get("cache.retranslations"), 0u) << Context;
  }
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, VmCachePressureSoak,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "Async" : "Sync";
                         });

TEST(VmCachePressure, HugeBudgetBehavesLikeUnbounded) {
  // A budget the run can never reach must not change what gets translated
  // or executed relative to the default unbounded configuration.
  VmConfig Plain;
  PressureOutcome A = runPressured("gzip", Plain);

  VmConfig Budgeted;
  Budgeted.CodeCacheBytes = 1ull << 30;
  PressureOutcome B = runPressured("gzip", Budgeted);

  expectSameGprs(B.Arch, A.Arch, "huge-budget");
  EXPECT_EQ(B.Stats.get("tcache.fragments"), A.Stats.get("tcache.fragments"));
  EXPECT_EQ(B.Stats.get("tcache.body_bytes"),
            A.Stats.get("tcache.body_bytes"));
  EXPECT_EQ(B.Stats.get("vm.guest_insts"), A.Stats.get("vm.guest_insts"));
  EXPECT_EQ(B.Stats.get("cache.evictions"), 0u);
  EXPECT_EQ(B.Stats.get("cache.degraded_flushes"), 0u);
  EXPECT_EQ(B.Stats.get("cache.budget_high_water"),
            B.Stats.get("tcache.body_bytes"));
}

struct EvictFaultCase {
  FaultSite Site;
  bool Async;
};

class VmEvictFaultMatrix : public ::testing::TestWithParam<EvictFaultCase> {};

// Permanent faults at the eviction sites: every capacity overflow degrades
// to a wholesale flush, and the run stays bit-identical to interpretation.
TEST_P(VmEvictFaultMatrix, PermanentEvictFaultDegradesToFlush) {
  EvictFaultCase Case = GetParam();
  for (const std::string &W : workloads::workloadNames()) {
    ArchState Ref = referenceRun(W);
    FaultInjector Inj;
    Inj.armAlways(Case.Site);
    VmConfig Config = pressuredConfig();
    Config.Dbt.Fault = &Inj;
    if (Case.Async) {
      Config.AsyncTranslate = true;
      Config.TranslateWorkers = 2;
    }
    PressureOutcome Out = runPressured(W, Config);
    std::string Context = W + "/" + dbt::getFaultSiteName(Case.Site) +
                          (Case.Async ? "/async" : "/sync");
    expectSameGprs(Out.Arch, Ref, Context);
    EXPECT_EQ(Out.InvariantViolations, 0u) << Context;
    EXPECT_LE(Out.Stats.get("cache.budget_high_water"), TinyBudget)
        << Context;
    // With the site permanently armed no individual eviction ever
    // succeeds; every overflow becomes a degradation flush.
    EXPECT_EQ(Out.Stats.get("cache.evictions"), 0u) << Context;
    EXPECT_GT(Out.Stats.get("cache.degraded_flushes"), 0u) << Context;
    EXPECT_EQ(Inj.firedCount(Case.Site),
              Out.Stats.get("cache.degraded_flushes"))
        << Context;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, VmEvictFaultMatrix,
    ::testing::Values(EvictFaultCase{FaultSite::EvictSelect, false},
                      EvictFaultCase{FaultSite::Unchain, false},
                      EvictFaultCase{FaultSite::EvictSelect, true},
                      EvictFaultCase{FaultSite::Unchain, true}),
    [](const ::testing::TestParamInfo<EvictFaultCase> &Info) {
      return std::string(dbt::getFaultSiteName(Info.param.Site)) +
             (Info.param.Async ? "Async" : "Sync");
    });

TEST(VmCachePressure, RandomEvictFaultScheduleStaysCorrect) {
  // Intermittent eviction faults: some overflows evict, some degrade to a
  // flush — the mix must never corrupt architected state.
  for (const std::string &W : {std::string("gzip"), std::string("vortex")}) {
    ArchState Ref = referenceRun(W);
    for (bool Async : {false, true}) {
      FaultInjector Inj;
      Inj.armRandom(FaultSite::EvictSelect, /*Seed=*/0xE71C7, 1, 4);
      VmConfig Config = pressuredConfig();
      Config.Dbt.Fault = &Inj;
      if (Async) {
        Config.AsyncTranslate = true;
        Config.TranslateWorkers = 3;
      }
      PressureOutcome Out = runPressured(W, Config);
      std::string Context = W + (Async ? "/random/async" : "/random/sync");
      expectSameGprs(Out.Arch, Ref, Context);
      EXPECT_EQ(Out.InvariantViolations, 0u) << Context;
      EXPECT_LE(Out.ResidentBytes, TinyBudget) << Context;
    }
  }
}

TEST(VmCachePressure, PressuredSaveWarmStartsBudgetedReload) {
  // A cache file saved under eviction pressure contains only resident
  // fragments; reloading it into a budgeted VM skips what will not fit
  // and the warm-started run stays correct.
  std::string Path = testing::TempDir() + "/pressure_warm.tcache";
  std::remove(Path.c_str());

  VmConfig SaveConfig;
  SaveConfig.PersistPath = Path;
  SaveConfig.Dbt.HotThreshold = 4;
  PressureOutcome Cold = runPressured("gzip", SaveConfig);
  ASSERT_EQ(Cold.Stats.get("persist.save_ok"), 1u);
  ASSERT_GT(Cold.Stats.get("persist.fragments_saved"), 0u);

  // Reload with a budget tighter than the saved footprint. The load
  // config must keep the save's translation parameters (they are part of
  // the cache fingerprint); only the budget changes — deliberately not
  // fingerprinted, so the file still validates.
  ArchState Ref = referenceRun("gzip");
  VmConfig LoadConfig;
  LoadConfig.Dbt.HotThreshold = 4;
  LoadConfig.CodeCacheBytes = 200;
  LoadConfig.PersistPath = Path;
  LoadConfig.PersistSave = false;
  PressureOutcome Warm = runPressured("gzip", LoadConfig);
  expectSameGprs(Warm.Arch, Ref, "pressured-warm-start");
  EXPECT_EQ(Warm.Stats.get("persist.load_ok"), 1u);
  EXPECT_GT(Warm.Stats.get("persist.fragments_skipped_budget"), 0u);
  EXPECT_LE(Warm.Stats.get("cache.budget_high_water"), 200u);
  EXPECT_EQ(Warm.InvariantViolations, 0u);
  std::remove(Path.c_str());
}
