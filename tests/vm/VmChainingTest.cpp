//===- tests/vm/VmChainingTest.cpp ----------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fragment chaining behaviour (Sections 3.2/4.3): patching of
/// call-translator exits, software jump prediction hit/miss flow through
/// the dispatch code, and the dual-address RAS return path.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::vm;
using Op = Opcode;

namespace {

GuestMemory loadProgram(Assembler &Asm, std::vector<uint32_t> Words) {
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(Asm.baseAddr() + I * 4, Words[I]);
  return Mem;
}

} // namespace

TEST(VmChaining, ExitsGetPatchedAsFragmentsAppear) {
  // Two hot inner loops inside an outer loop: the first inner fragment's
  // fall-through exit is initially a call-translator exit and must be
  // patched once the junction code between the loops becomes hot and gets
  // its own fragment.
  Assembler Asm(0x10000);
  Asm.loadImm(18, 80); // outer iterations (above the hot threshold)
  auto Outer = Asm.createLabel("outer");
  Asm.bind(Outer);
  Asm.loadImm(17, 100);
  auto L1 = Asm.createLabel("l1");
  Asm.bind(L1);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, L1);
  Asm.loadImm(17, 100);
  auto L2 = Asm.createLabel("l2");
  Asm.bind(L2);
  Asm.operatei(Op::ADDQ, 9, 2, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, L2);
  Asm.operatei(Op::SUBL, 18, 1, 18);
  Asm.condBr(Op::BNE, 18, Outer);
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());

  VmConfig Config;
  VirtualMachine Vm(Mem, 0x10000, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  EXPECT_GE(S.get("tcache.fragments"), 2u);
  EXPECT_GT(S.get("tcache.patches"), 0u);
  // Chained transfers dominate; translator exits happen only while the
  // second fragment does not exist yet.
  EXPECT_GT(S.get("exit.chained"), S.get("exit.translator"));
}

TEST(VmChaining, SelfLoopChainsWithoutDispatch) {
  Assembler Asm(0x10000);
  Asm.loadImm(17, 5000);
  auto L = Asm.createLabel("l");
  Asm.bind(L);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, L);
  Asm.halt();
  GuestMemory Mem = loadProgram(Asm, Asm.finalize());
  VmConfig Config;
  VirtualMachine Vm(Mem, 0x10000, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  EXPECT_GT(S.get("exit.chained"), 4000u);
  EXPECT_EQ(S.get("dispatch.calls"), 0u);
}

namespace {

/// A call/return pattern driven through a function-pointer table with two
/// targets so software jump prediction sees both hits and misses.
GuestMemory buildCallProgram(uint64_t &Entry, unsigned Iters,
                             bool Alternate) {
  Assembler Asm(0x10000);
  auto F1 = Asm.createLabel("f1");
  auto F2 = Asm.createLabel("f2");
  auto Loop = Asm.createLabel("loop");
  Asm.loadImm(RegSP, 0x30000);
  Asm.loadImm(17, Iters);
  Asm.loadLabelAddr(4, F1);
  Asm.loadLabelAddr(5, F2);
  Asm.bind(Loop);
  if (Alternate) {
    // Alternate targets: r27 = odd(r17) ? f1 : f2.
    Asm.mov(5, 27);
    Asm.operate(Op::CMOVLBS, 17, 4, 27);
  } else {
    Asm.mov(4, 27);
  }
  Asm.jsr(26, 27);
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Loop);
  Asm.halt();
  Asm.bind(F1);
  Asm.operatei(Op::ADDQ, 9, 1, 9);
  Asm.ret(26);
  Asm.bind(F2);
  Asm.operatei(Op::ADDQ, 9, 2, 9);
  Asm.ret(26);
  Entry = 0x10000;
  GuestMemory Mem;
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Mem.mapRegion(0x30000 - 0x1000, 0x2000);
  return Mem;
}

} // namespace

TEST(VmChaining, StablePredictionHitsAfterWarmup) {
  uint64_t Entry;
  GuestMemory Mem = buildCallProgram(Entry, 4000, /*Alternate=*/false);
  VmConfig Config;
  VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  // Monomorphic call target: software prediction should almost always hit.
  EXPECT_GT(S.get("exit.predict_hit"), 3000u);
  EXPECT_LT(S.get("exit.predict_miss"), 100u);
  // Returns are covered by the dual-address RAS (warm-up may miss once
  // or twice while fragments are still being created).
  EXPECT_GT(S.get("exit.return_hit"), 3000u);
  EXPECT_LE(S.get("exit.return_miss"), 5u);
}

TEST(VmChaining, AlternatingTargetsMissPrediction) {
  uint64_t Entry;
  GuestMemory Mem = buildCallProgram(Entry, 4000, /*Alternate=*/true);
  VmConfig Config;
  VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  // The embedded translation-time target matches only half the calls:
  // the paper's "inherent limit of simple translation-time prediction".
  EXPECT_GT(S.get("exit.predict_miss"), 1000u);
  EXPECT_GT(S.get("dispatch.calls"), 1000u);
  EXPECT_EQ(S.get("dispatch.insts"),
            S.get("dispatch.calls") * VirtualMachine::DispatchInsts);
}

TEST(VmChaining, NoPredAlwaysDispatches) {
  uint64_t Entry;
  GuestMemory Mem = buildCallProgram(Entry, 2000, /*Alternate=*/false);
  VmConfig Config;
  Config.Dbt.Chaining = dbt::ChainPolicy::NoPred;
  VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  EXPECT_EQ(S.get("exit.predict_hit"), 0u);
  EXPECT_EQ(S.get("exit.return_hit"), 0u);
  // Every indirect transfer (call and return) goes through dispatch.
  EXPECT_GT(S.get("exit.dispatch"), 3500u);
}

TEST(VmChaining, SwPredNoRasTreatsReturnsAsJumps) {
  uint64_t Entry;
  GuestMemory Mem = buildCallProgram(Entry, 2000, /*Alternate=*/false);
  VmConfig Config;
  Config.Dbt.Chaining = dbt::ChainPolicy::SwPredNoRas;
  VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  EXPECT_EQ(S.get("exit.return_hit"), 0u);
  EXPECT_EQ(S.get("exit.return_miss"), 0u);
  EXPECT_EQ(S.get("ras.push"), 0u);
  // Returns here are monomorphic (single call site): compare-and-branch
  // prediction works for them too.
  EXPECT_GT(S.get("exit.predict_hit"), 3000u);
}

TEST(VmChaining, DualRasSurvivesRealRecursion) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("parser", Mem, 1);
  VmConfig Config;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  uint64_t Hits = S.get("exit.return_hit");
  uint64_t Misses = S.get("exit.return_miss");
  ASSERT_GT(Hits + Misses, 1000u);
  // The paper: the dual-address RAS achieves near-original return
  // prediction. Recursion depth can exceed 8, so some misses are fine.
  EXPECT_GT(Hits, (Hits + Misses) * 8 / 10);
}
