//===- tests/vm/VmStatsConsistencyTest.cpp --------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks between independently maintained statistics — the numbers
/// the benches print must be internally consistent:
///   - V-instruction conservation: interpreted + translated credits equal
///     the reference interpreter's retired count (minus NOPs handling),
///   - dispatch accounting: insts == 20 x calls; stubs pair with
///     dispatch-taking exits,
///   - exits partition segment transitions,
///   - usage-class counts sum to the source-op count.
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::vm;

namespace {

struct Consistency : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(Consistency, StatisticsAddUp) {
  const std::string &Workload = GetParam();

  // Reference: count retired V-instructions and NOP-like removals.
  uint64_t RefInsts = 0;
  uint64_t RefNopLike = 0;
  {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
    Interpreter Ref(Mem);
    Ref.state().Pc = Img.EntryPc;
    for (;;) {
      StepInfo Info = Ref.step();
      ASSERT_NE(Info.Status, StepStatus::Trapped);
      ++RefInsts;
      if (Info.Inst.isNop() ||
          (alpha::isLoad(Info.Inst.Op) && Info.Inst.Ra == alpha::RegZero))
        ++RefNopLike;
      if (Info.Status == StepStatus::Halted)
        break;
    }
  }

  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, 1);
  VmConfig Config;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();

  // --- V-instruction conservation. NOPs retired by the interpreter count
  // there but carry no credit in translated code, so the identity is an
  // inequality band of width RefNopLike (+1 for halt re-step slack).
  uint64_t Accounted = S.get("interp.insts") + S.get("vm.vinsts_translated");
  EXPECT_GE(Accounted + RefNopLike + 2, RefInsts);
  EXPECT_LE(Accounted, RefInsts + 2);

  // --- Dispatch accounting.
  EXPECT_EQ(S.get("dispatch.insts"),
            S.get("dispatch.calls") * VirtualMachine::DispatchInsts);
  uint64_t DispatchTakers = S.get("exit.predict_miss") +
                            S.get("exit.dispatch") +
                            S.get("exit.return_miss");
  EXPECT_EQ(S.get("dispatch.calls"), DispatchTakers);
  EXPECT_EQ(S.get("stub.insts"), DispatchTakers);

  // --- Usage classes partition the source operations.
  uint64_t UsageSum = 0;
  for (auto &[Name, Value] : S.getWithPrefix("usage."))
    UsageSum += Value;
  EXPECT_EQ(UsageSum, S.get("frag.source_ops"));
  EXPECT_LE(S.get("frag.source_ops"), S.get("frag.insts"));

  // --- Exit kinds partition fragment executions: every fragment execution
  // ends in exactly one exit.
  uint64_t Exits = 0;
  for (const char *Name :
       {"exit.chained", "exit.chained_missing", "exit.translator",
        "exit.predict_hit", "exit.predict_hit_untranslated",
        "exit.predict_miss", "exit.dispatch", "exit.return_hit",
        "exit.return_miss", "exit.halt", "exit.trap"})
    Exits += S.get(Name);
  uint64_t FragExecs = 0;
  for (const auto &Frag : Vm.tcache().fragments())
    FragExecs += Frag->ExecCount;
  EXPECT_EQ(Exits, FragExecs);

  // --- Copies never exceed fragment instructions; bytes are consistent.
  EXPECT_LE(S.get("frag.copy_insts"), S.get("frag.insts"));
  EXPECT_EQ(S.get("tcache.fragments"), Vm.tcache().fragmentCount());
  uint64_t Bytes = 0;
  for (const auto &Frag : Vm.tcache().fragments())
    Bytes += Frag->BodyBytes;
  EXPECT_EQ(S.get("tcache.body_bytes"), Bytes);

  // --- Checksum sanity: the workload produced its value.
  EXPECT_NE(Vm.interpreter().state().readGpr(alpha::RegV0), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, Consistency,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto &Info) { return Info.param; });
