//===- tests/vm/VmConformanceTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-feature conformance matrix: every workload under every
/// combination of {synchronous, background translation} x {unbounded,
/// tiny code-cache budget} x {cold start, warm start from one shared
/// multi-image store} x {no faults, one armed fault site} x {I-ISA only,
/// native host tier}. The DBT features were each proven correct in
/// isolation; this harness proves they compose — whatever the cell,
/// architected state is bit-identical to pure interpretation, the chain
/// invariant holds, the byte budget is never exceeded, and warm starts
/// really warm: the unbounded no-fault warm cells must report ZERO
/// translation work, sync and async alike, all twelve images served by a
/// single store artifact. Native cells re-aim the armed fault at the
/// native compile (cold) or dlopen (warm) site — degrading to the I-ISA
/// tier, never to a wrong answer — and run unchanged where no host
/// toolchain exists (the tier simply stays disabled).
///
//===----------------------------------------------------------------------===//

#include "core/FaultInjector.h"
#include "native/NativeCompiler.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <unistd.h>

using namespace ildp;
using namespace ildp::vm;
using dbt::FaultInjector;
using dbt::FaultSite;

namespace {

/// Same pressure point as VmCachePressureTest: small enough to force
/// eviction on every workload, large enough that fragments produced by
/// the *default* superblock limit still fit individually after the VM
/// clamps MaxFragmentBytes to the budget.
constexpr uint64_t TinyBudget = 4096;

/// Reference final state from the plain interpreter, computed once per
/// workload (16 cells reuse it).
const ArchState &referenceRun(const std::string &Name) {
  static std::map<std::string, ArchState> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  EXPECT_EQ(Interp.run(2'000'000'000ull).Status, StepStatus::Halted);
  return Cache.emplace(Name, Interp.state()).first->second;
}

void expectSameGprs(const ArchState &Got, const ArchState &Ref,
                    const std::string &Context) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

/// One shared store warm-starting every workload. Built lazily by cold
/// default-config runs of all twelve workloads saving into one path; the
/// warm cells vary only knobs outside the fingerprint (budget, async,
/// faults), so this single artifact serves every one of them.
const std::string &sharedStorePath() {
  static std::string Path;
  if (!Path.empty())
    return Path;
  // Pid-unique: under parallel ctest every cell is its own process with
  // its own lazy seeding pass, and sharing one file across processes
  // would race a reader against another process's re-seed.
  Path = testing::TempDir() + "/conformance." + std::to_string(getpid()) +
         ".tstore";
  std::remove(Path.c_str());
  for (const std::string &W : workloads::workloadNames()) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    VmConfig Config;
    Config.PersistPath = Path;
    VirtualMachine Vm(Mem, Img.EntryPc, Config);
    EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << "seeding " << W;
    EXPECT_EQ(Vm.stats().get("persist.save_ok"), 1u) << "seeding " << W;
  }
  return Path;
}

struct Cell {
  bool Async = false;
  bool Tiny = false;
  bool Warm = false;
  bool Fault = false;
  bool Native = false;
};

struct CellOutcome {
  ArchState Arch;
  StatisticSet Stats;
  size_t InvariantViolations = 0;
};

CellOutcome runCell(const std::string &Name, const Cell &C) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);

  VmConfig Config;
  if (C.Async) {
    Config.AsyncTranslate = true;
    Config.TranslateWorkers = 2;
  }
  if (C.Tiny)
    Config.CodeCacheBytes = TinyBudget;
  if (C.Warm) {
    Config.PersistPath = sharedStorePath();
    Config.PersistSave = false; // Cells must not mutate the shared store.
  }
  if (C.Native) {
    Config.NativeTier = true;
    Config.NativeThreshold = 16;
  }
  FaultInjector Inj;
  if (C.Fault) {
    if (C.Native) {
      // Native cells aim the fault at the native tier itself: cold cells
      // fail a host compile, warm cells fail a dlopen; both must degrade
      // to the I-ISA tier with the answer unchanged.
      Inj.armCount(C.Warm ? FaultSite::NativeLoad : FaultSite::NativeCompile,
                   1);
    } else {
      // Warm cells fault the import (degrade to cold); cold cells fault
      // the first code-generation attempt (interpret-and-retry).
      Inj.armCount(C.Warm ? FaultSite::PersistImport : FaultSite::CodeGen, 1);
    }
    Config.Dbt.Fault = &Inj;
  }

  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  EXPECT_EQ(Vm.run().Reason, StopReason::Halted) << Name;
  return {Vm.interpreter().state(), Vm.stats(),
          Vm.tcache().chainInvariantViolations()};
}

} // namespace

class VmConformance
    : public ::testing::TestWithParam<
          std::tuple<bool, bool, bool, bool, bool>> {};

TEST_P(VmConformance, AllWorkloadsMatchInterpreter) {
  Cell C;
  std::tie(C.Async, C.Tiny, C.Warm, C.Fault, C.Native) = GetParam();
  std::string Suffix = std::string(C.Async ? "/async" : "/sync") +
                       (C.Tiny ? "/tiny" : "/unbounded") +
                       (C.Warm ? "/warm" : "/cold") +
                       (C.Fault ? "/fault" : "") +
                       (C.Native ? "/native" : "");

  for (const std::string &W : workloads::workloadNames()) {
    const ArchState &Ref = referenceRun(W);
    CellOutcome Out = runCell(W, C);
    std::string Context = W + Suffix;

    // The one property every cell shares: correctness.
    expectSameGprs(Out.Arch, Ref, Context);
    EXPECT_EQ(Out.InvariantViolations, 0u) << Context;

    if (C.Tiny) {
      EXPECT_LE(Out.Stats.get("cache.budget_high_water"), TinyBudget)
          << Context;
    }

    if (C.Native) {
      // The tier engages only where a toolchain exists; either way the
      // architected-state check above is the bar, and every non-native
      // statistic asserted below is identical to the native-off cell.
      EXPECT_EQ(Out.Stats.get("native.enabled"),
                native::hostCompiler().found() ? 1u : 0u)
          << Context;
    }

    if (C.Warm && C.Fault && !C.Native) {
      // The armed import fault must degrade to a counted cold start.
      EXPECT_EQ(Out.Stats.get("persist.import_rejected.injected-fault"), 1u)
          << Context;
      EXPECT_EQ(Out.Stats.get("persist.fragments_imported"), 0u) << Context;
      EXPECT_GT(Out.Stats.get("dbt.fragments"), 0u) << Context;
    } else if (C.Warm) {
      // Every warm cell hits its slot in the one shared artifact.
      EXPECT_EQ(Out.Stats.get("persist.store_hit"), 1u) << Context;
      EXPECT_EQ(Out.Stats.get("persist.store_images"),
                workloads::workloadNames().size())
          << Context;
      if (!C.Tiny) {
        // The acceptance criterion: a warm start from the shared store
        // does ZERO translation work, synchronous or background.
        EXPECT_EQ(Out.Stats.get("dbt.fragments"), 0u) << Context;
        EXPECT_EQ(Out.Stats.get("dbt.cost.total"), 0u) << Context;
      } else {
        // Under a tiny budget the import keeps only what fits (the
        // budget high-water check above proves it never overran); the
        // slot itself still loaded cleanly.
        EXPECT_EQ(Out.Stats.get("persist.load_ok"), 1u) << Context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VmConformance,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<
        std::tuple<bool, bool, bool, bool, bool>> &Info) {
      return std::string(std::get<0>(Info.param) ? "Async" : "Sync") +
             (std::get<1>(Info.param) ? "Tiny" : "Unbounded") +
             (std::get<2>(Info.param) ? "Warm" : "Cold") +
             (std::get<3>(Info.param) ? "Fault" : "NoFault") +
             (std::get<4>(Info.param) ? "Native" : "Iisa");
    });
