//===- tests/vm/VmGarbageFuzzTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Garbage-in robustness: the VM pointed at seeded random guest images —
/// biased toward decodable-but-meaningless instructions — must never
/// crash, synchronously or with background workers; every run ends in a
/// halt, a precise trap, or the budget, and any halt/trap state is
/// bit-identical to the pure interpreter's. A second fuzzer feeds random
/// superblocks straight into translate(): every outcome must be a
/// fragment or a typed TranslateStatus, never an abort.
///
//===----------------------------------------------------------------------===//

#include "alpha/Decoder.h"
#include "core/FaultInjector.h"
#include "support/Rng.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ildp;
using namespace ildp::vm;

namespace {

constexpr uint64_t CodeBase = 0x10000;
constexpr unsigned CodeWords = 512;
constexpr uint64_t FuzzBudget = 100'000;

/// A seeded garbage image: mostly words with a plausible Alpha major
/// opcode (operates, loads/stores, branches) so decoding and control flow
/// get real coverage, with a fully random word mixed in now and then.
std::vector<uint32_t> garbageWords(uint64_t Seed) {
  Rng Rand(Seed * 0x9E3779B97F4A7C15ull + 1);
  std::vector<uint32_t> Words;
  Words.reserve(CodeWords);
  for (unsigned I = 0; I != CodeWords; ++I) {
    uint32_t Word = uint32_t(Rand.next());
    switch (Rand.nextBelow(16)) {
    case 0: // Fully random (often undecodable -> IllegalInst coverage).
      break;
    case 1: // Memory format: LDx/STx majors, small positive displacement
            // (low memory is mapped, so zeroed registers mostly survive).
      do {
        Word = (uint32_t(Rand.next()) & 0x03FF0000) |
               (uint32_t(Rand.next()) & 0x07F8) |
               (uint32_t(0x28 + Rand.nextBelow(8)) << 26);
      } while (!alpha::decode(Word).valid());
      break;
    case 2:
    case 3:
    case 4: { // Conditional branch, biased backward: forms garbage loops.
      int32_t Disp = int32_t(Rand.nextBelow(80)) - 64;
      do {
        Word = (uint32_t(Rand.next()) & 0x03E00000) |
               (uint32_t(Disp) & 0x001FFFFF) |
               (uint32_t(0x38 + Rand.nextBelow(8)) << 26);
      } while (!alpha::decode(Word).valid());
      break;
    }
    default: // Operate format (INTA/INTL/INTS major opcodes). The function
             // field is sparse, so re-roll until the word decodes.
      do {
        Word = (uint32_t(Rand.next()) & 0x03FFFFFF) |
               (uint32_t(0x10 + Rand.nextBelow(3)) << 26);
      } while (!alpha::decode(Word).valid());
      break;
    }
    Words.push_back(Word);
  }
  return Words;
}

GuestMemory loadImage(const std::vector<uint32_t> &Words) {
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(CodeBase + I * 4, Words[I]);
  // Low memory is mapped so small-displacement accesses off zeroed
  // registers survive long enough for hot paths to form.
  Mem.mapRegion(0, 0x4000);
  return Mem;
}

struct RefOutcome {
  StepStatus Status;
  Trap TrapInfo;
  ArchState Arch;
};

RefOutcome interpretReference(const std::vector<uint32_t> &Words) {
  GuestMemory Mem = loadImage(Words);
  Interpreter Interp(Mem);
  Interp.state().Pc = CodeBase;
  RefOutcome Out;
  Out.Status = StepStatus::Ok;
  for (uint64_t I = 0; I != FuzzBudget; ++I) {
    StepInfo Info = Interp.step();
    if (Info.Status != StepStatus::Ok) {
      Out.Status = Info.Status;
      Out.TrapInfo = Info.TrapInfo;
      break;
    }
  }
  Out.Arch = Interp.state();
  return Out;
}

/// Runs one garbage image through the VM and cross-checks the outcome
/// against the pure interpreter. Accumulates the number of fragments the
/// run translated so callers can assert the sweep really reached the DBT.
void fuzzOneImage(uint64_t Seed, bool Async, uint64_t &TotalFragments) {
  std::vector<uint32_t> Words = garbageWords(Seed);
  RefOutcome Ref = interpretReference(Words);

  GuestMemory Mem = loadImage(Words);
  VmConfig Config;
  Config.Dbt.HotThreshold = 4; // Reach translation quickly on any loop.
  Config.MaxGuestInsts = FuzzBudget;
  if (Async) {
    Config.AsyncTranslate = true;
    Config.TranslateWorkers = 2;
  }
  VirtualMachine Vm(Mem, CodeBase, Config);
  RunResult Result = Vm.run();
  TotalFragments += Vm.stats().get("tcache.fragments");

  std::string Context =
      "seed " + std::to_string(Seed) + (Async ? " async" : " sync");
  switch (Ref.Status) {
  case StepStatus::Halted:
    ASSERT_EQ(Result.Reason, StopReason::Halted) << Context;
    break;
  case StepStatus::Trapped:
    ASSERT_EQ(Result.Reason, StopReason::Trapped) << Context;
    EXPECT_EQ(Result.Trap.TrapInfo.Kind, Ref.TrapInfo.Kind) << Context;
    EXPECT_EQ(Result.Trap.Arch.Pc, Ref.Arch.Pc) << Context;
    break;
  case StepStatus::Ok:
    // Reference ran out of budget. The VM counts removed nops differently
    // in translated code, so its own horizon lands elsewhere; terminating
    // cleanly (any reason, no crash) is the property under test here.
    return;
  }
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Vm.interpreter().state().readGpr(Reg), Ref.Arch.readGpr(Reg))
        << Context << ": register r" << Reg << " diverged";
}

} // namespace

TEST(VmGarbageFuzz, RandomImagesNeverCrashSync) {
  uint64_t Fragments = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed)
    fuzzOneImage(Seed, /*Async=*/false, Fragments);
  // The generator biases toward backward branches precisely so some
  // garbage loops turn hot; a sweep that never translates tests nothing.
  EXPECT_GT(Fragments, 0u);
}

TEST(VmGarbageFuzz, RandomImagesNeverCrashAsync) {
  uint64_t Fragments = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed)
    fuzzOneImage(Seed, /*Async=*/true, Fragments);
  EXPECT_GT(Fragments, 0u);
}

// ---------------------------------------------------------------------------
// Random superblocks straight into the pipeline.
// ---------------------------------------------------------------------------

namespace {

/// Builds a superblock from decoded random words with recorder-shaped
/// metadata. Valid-opcode words only (translate() rejects the rest as
/// malformed before the pipeline runs), but the instruction *sequence*
/// respects no recorder invariant at all.
dbt::Superblock randomSuperblock(Rng &Rand) {
  dbt::Superblock Sb;
  Sb.EntryVAddr = CodeBase;
  unsigned Len = 1 + unsigned(Rand.nextBelow(24));
  uint64_t VAddr = CodeBase;
  std::vector<uint32_t> Pool = garbageWords(Rand.next());
  for (unsigned I = 0; I != Len; ++I) {
    alpha::AlphaInst Inst = alpha::decode(Pool[Rand.nextBelow(Pool.size())]);
    if (!Inst.valid())
      continue;
    dbt::SourceInst Src;
    Src.VAddr = VAddr;
    Src.Inst = Inst;
    Src.Taken = Rand.nextChance(1, 3);
    Src.NextVAddr = Src.Taken && alpha::isCondBranch(Inst.Op)
                        ? Inst.branchTarget(VAddr)
                        : VAddr + alpha::InstBytes;
    Sb.Insts.push_back(Src);
    VAddr += alpha::InstBytes;
  }
  Sb.End = dbt::SbEndReason(Rand.nextBelow(6));
  Sb.FinalNextVAddr = VAddr;
  return Sb;
}

} // namespace

TEST(PipelineFuzz, RandomSuperblocksYieldFragmentOrTypedError) {
  Rng Rand(0xF00DF00D);
  const iisa::IsaVariant Variants[] = {iisa::IsaVariant::Basic,
                                       iisa::IsaVariant::Modified,
                                       iisa::IsaVariant::Straight};
  unsigned Ok = 0, Failed = 0;
  for (unsigned Trial = 0; Trial != 300; ++Trial) {
    dbt::Superblock Sb = randomSuperblock(Rand);
    dbt::DbtConfig Config;
    Config.Variant = Variants[Trial % 3];
    Config.NumAccumulators = 2 + unsigned(Trial % 7);
    dbt::Expected<dbt::TranslationResult> R =
        dbt::translate(Sb, Config, dbt::ChainEnv());
    if (R) {
      ++Ok;
      EXPECT_FALSE(R->Frag.Body.empty()) << "trial " << Trial;
    } else {
      ++Failed;
      EXPECT_NE(R.status(), dbt::TranslateStatus::Ok) << "trial " << Trial;
    }
  }
  // The fuzzer exercises both outcomes; neither dominates completely.
  EXPECT_GT(Ok + Failed, 0u);
  SUCCEED() << Ok << " translated, " << Failed << " typed failures";
}
