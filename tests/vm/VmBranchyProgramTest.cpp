//===- tests/vm/VmBranchyProgramTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential property test over *branchy* random programs run through
/// the whole VM: structured random code (data-dependent forward branches,
/// nested counted loops, memory traffic) must produce interpreter-exact
/// final state under every backend. This exercises side-exit reversal,
/// patching, multi-fragment chaining, and path-dependent recording in ways
/// straight-line fuzzing cannot.
///
//===----------------------------------------------------------------------===//

#include "VmTestUtil.h"

#include "interp/Interpreter.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::alpha;
using namespace ildp::vmtest;

namespace {

struct BranchyCase {
  uint64_t Seed;
  iisa::IsaVariant Variant;
};

class VmBranchyProgram : public ::testing::TestWithParam<BranchyCase> {};

} // namespace

TEST_P(VmBranchyProgram, WholeVmMatchesInterpreter) {
  BranchyCase Case = GetParam();
  uint64_t Entry = 0;
  std::vector<uint32_t> Words = buildBranchyProgram(Case.Seed, Entry);

  GuestMemory RefMem = loadBranchyEnv(Words, Case.Seed);
  Interpreter Ref(RefMem);
  Ref.state().Pc = Entry;
  StepInfo Last = Ref.run(80'000'000);
  ASSERT_EQ(Last.Status, StepStatus::Halted) << "seed " << Case.Seed;

  GuestMemory Mem = loadBranchyEnv(Words, Case.Seed);
  vm::VmConfig Config;
  Config.Dbt.Variant = Case.Variant;
  vm::VirtualMachine Vm(Mem, Entry, Config);
  ASSERT_EQ(Vm.run().Reason, vm::StopReason::Halted);

  for (unsigned Reg = 0; Reg != NumGprs; ++Reg)
    EXPECT_EQ(Vm.interpreter().state().readGpr(Reg), Ref.state().readGpr(Reg))
        << "r" << Reg << " seed " << Case.Seed;
  // The run must have exercised translated code meaningfully.
  EXPECT_GT(Vm.stats().get("vm.vinsts_translated"),
            Vm.stats().get("interp.insts") / 4);
  // Memory images match.
  for (unsigned I = 0; I != 64; ++I)
    EXPECT_EQ(Mem.load(DataBase + I * 8, 8).Value,
              RefMem.load(DataBase + I * 8, 8).Value)
        << "word " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VmBranchyProgram, ::testing::ValuesIn([] {
      std::vector<BranchyCase> Cases;
      for (uint64_t Seed = 1; Seed <= 10; ++Seed)
        for (auto Variant :
             {iisa::IsaVariant::Basic, iisa::IsaVariant::Modified,
              iisa::IsaVariant::Straight})
          Cases.push_back({Seed, Variant});
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<BranchyCase> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_" +
             dbt::getVariantName(Info.param.Variant);
    });
