//===- tests/vm/VmStatsDeltaTest.cpp --------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VirtualMachine::statsDelta(), the per-request attribution primitive of
/// the fleet service: repeated deltas over one VM's lifetime must
/// partition the monotonic counters exactly (every unit of work attributed
/// to exactly one delta, nothing lost, nothing double-counted), while
/// gauge counters — sizes and high-waters that do not accumulate — are
/// reported at their current value in every delta.
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>

using namespace ildp;
using namespace ildp::vm;

namespace {

/// Mirror of the gauge list in VirtualMachine.cpp: instantaneous values,
/// excluded from the sum-of-deltas identity.
const std::set<std::string> Gauges = {
    "tcache.fragments",        "tcache.body_bytes",
    "tcache.unique_source_insts", "cache.budget_high_water",
    "robust.blacklisted_pcs",  "async.workers",
    "persist.store_images",    "persist.store_bytes",
};

} // namespace

TEST(VmStatsDelta, DeltasPartitionCountersAcrossSlicedRun) {
  const std::string Name = workloads::workloadNames().front();
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);

  VmConfig Config;
  Config.MaxGuestInsts = 20'000; // First slice.
  VirtualMachine Vm(Mem, Img.EntryPc, Config);

  std::map<std::string, uint64_t> Summed;
  std::map<std::string, uint64_t> LastGauge;
  unsigned Slices = 0;
  for (;;) {
    RunResult Run = Vm.run();
    StatisticSet Delta = Vm.statsDelta();
    ++Slices;
    for (const auto &[Counter, Value] : Delta.getWithPrefix("")) {
      if (Gauges.count(Counter))
        LastGauge[Counter] = Value;
      else
        Summed[Counter] += Value;
    }
    if (Run.Reason == StopReason::Halted)
      break;
    ASSERT_EQ(Run.Reason, StopReason::Budget);
    Vm.setGuestInstBudget(Vm.guestInsts() + 20'000);
  }
  ASSERT_GT(Slices, 2u) << "workload too small to slice";

  // Exact partition: for every monotonic counter the deltas sum to the
  // lifetime total, and no counter appears in a delta without being in
  // the totals.
  const StatisticSet &Total = Vm.stats();
  for (const auto &[Counter, Value] : Total.getWithPrefix("")) {
    if (Gauges.count(Counter)) {
      EXPECT_EQ(LastGauge[Counter], Value) << Counter;
      continue;
    }
    EXPECT_EQ(Summed[Counter], Value) << Counter;
    Summed.erase(Counter);
  }
  for (const auto &[Counter, Value] : Summed)
    ADD_FAILURE() << "delta-only counter " << Counter << " = " << Value;
}

TEST(VmStatsDelta, BackToBackDeltaIsAllGauges) {
  const std::string Name = workloads::workloadNames().front();
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VirtualMachine Vm(Mem, Img.EntryPc, VmConfig{});
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);

  (void)Vm.statsDelta();
  // Nothing ran since the baseline reset: the next delta may carry gauge
  // readings, but not a single unit of monotonic work.
  StatisticSet Idle = Vm.statsDelta();
  for (const auto &[Counter, Value] : Idle.getWithPrefix(""))
    EXPECT_TRUE(Gauges.count(Counter))
        << "idle delta charged " << Counter << " = " << Value;
}

TEST(VmStatsDelta, FirstDeltaIncludesConstructionWork) {
  // Warm-start import happens at construction; the first delta must
  // attribute it (the fleet charges it to the first request, never to
  // nobody).
  const std::string Name = workloads::workloadNames().front();
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VirtualMachine Vm(Mem, Img.EntryPc, VmConfig{});
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  StatisticSet Delta = Vm.statsDelta();
  EXPECT_EQ(Delta.get("dbt.fragments"), Vm.stats().get("dbt.fragments"));
  EXPECT_GT(Delta.get("dbt.fragments"), 0u);
}
