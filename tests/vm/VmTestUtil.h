//===- tests/vm/VmTestUtil.h - Shared whole-VM test helpers ---------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random branchy-program generator shared by the whole-VM
/// differential tests (VmBranchyProgramTest, VmConfigSweepTest): an outer
/// hot loop of data-dependent forward branches, occasional inner counted
/// loops, and memory traffic over a seeded data region.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_TESTS_VM_VMTESTUTIL_H
#define ILDP_TESTS_VM_VMTESTUTIL_H

#include "alpha/Assembler.h"
#include "mem/GuestMemory.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace ildp {
namespace vmtest {

constexpr uint64_t DataBase = 0x40000;

/// Emits a random basic block of ALU/memory work over r1..r6.
inline void emitWork(alpha::Assembler &Asm, Rng &Rand, unsigned Ops) {
  using Op = alpha::Opcode;
  static const Op Alu[] = {Op::ADDQ, Op::SUBQ, Op::XOR,   Op::AND,
                           Op::BIS,  Op::SLL,  Op::SRL,   Op::S4ADDQ,
                           Op::CMPEQ, Op::CMPULT, Op::ADDL, Op::MULQ};
  auto Reg = [&] { return uint8_t(1 + Rand.nextBelow(6)); };
  for (unsigned I = 0; I != Ops; ++I) {
    switch (Rand.nextBelow(8)) {
    case 0:
      Asm.ldq(Reg(), int32_t(Rand.nextBelow(16)) * 8, 16);
      break;
    case 1:
      Asm.stq(Reg(), int32_t(Rand.nextBelow(16)) * 8, 16);
      break;
    case 2:
      Asm.operate(Op::CMOVLBS, Reg(), Reg(), Reg());
      break;
    default:
      if (Rand.nextChance(1, 2))
        Asm.operatei(Alu[Rand.nextBelow(std::size(Alu))], Reg(),
                     uint8_t(Rand.nextBelow(32)), Reg());
      else
        Asm.operate(Alu[Rand.nextBelow(std::size(Alu))], Reg(), Reg(),
                    Reg());
      break;
    }
  }
}

/// Builds a random branchy program: an outer hot loop whose body is a
/// chain of blocks separated by data-dependent forward branches, with an
/// occasional inner counted loop. Entry is returned via \p Entry; the
/// accumulated result lands in v0 before HALT.
inline std::vector<uint32_t> buildBranchyProgram(uint64_t Seed,
                                                 uint64_t &Entry) {
  using Op = alpha::Opcode;
  Rng Rand(Seed);
  alpha::Assembler Asm(0x10000);
  Asm.loadImm(16, int64_t(DataBase));
  for (unsigned R = 1; R <= 6; ++R)
    Asm.loadImm(uint8_t(R), int64_t(Rand.next() & 0xFFFF));
  Asm.movi(0, 9);
  Asm.loadImm(17, 400 + Rand.nextBelow(200)); // outer trip count

  auto Outer = Asm.createLabel("outer");
  Asm.bind(Outer);
  unsigned Segments = 2 + unsigned(Rand.nextBelow(4));
  static const Op Conds[] = {Op::BEQ, Op::BNE, Op::BLT,
                             Op::BGE, Op::BLBC, Op::BLBS};
  for (unsigned S = 0; S != Segments; ++S) {
    emitWork(Asm, Rand, 2 + unsigned(Rand.nextBelow(6)));
    // Data-dependent forward branch over an alternative block.
    auto Skip = Asm.createLabel("skip" + std::to_string(S));
    Asm.condBr(Conds[Rand.nextBelow(std::size(Conds))],
               uint8_t(1 + Rand.nextBelow(6)), Skip);
    emitWork(Asm, Rand, 1 + unsigned(Rand.nextBelow(4)));
    Asm.bind(Skip);
    if (Rand.nextChance(1, 3)) {
      // Inner counted loop.
      Asm.loadImm(7, 3 + Rand.nextBelow(6));
      auto Inner = Asm.createLabel("inner" + std::to_string(S));
      Asm.bind(Inner);
      emitWork(Asm, Rand, 2);
      Asm.operatei(Op::SUBQ, 7, 1, 7);
      Asm.condBr(Op::BNE, 7, Inner);
    }
    Asm.operate(Op::ADDQ, 9, uint8_t(1 + Rand.nextBelow(6)), 9);
  }
  Asm.operatei(Op::SUBL, 17, 1, 17);
  Asm.condBr(Op::BNE, 17, Outer);
  Asm.mov(9, alpha::RegV0);
  Asm.halt();
  Entry = 0x10000;
  return Asm.finalize();
}

/// Loads \p Words at the program base and seeds the data region.
inline GuestMemory loadBranchyEnv(const std::vector<uint32_t> &Words,
                                  uint64_t Seed) {
  GuestMemory Mem;
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Mem.mapRegion(DataBase, 0x1000);
  Rng Rand(Seed * 977 + 13);
  for (unsigned I = 0; I != 64; ++I)
    Mem.poke64(DataBase + I * 8, Rand.next());
  return Mem;
}

} // namespace vmtest
} // namespace ildp

#endif // ILDP_TESTS_VM_VMTESTUTIL_H
