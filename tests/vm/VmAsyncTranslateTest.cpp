//===- tests/vm/VmAsyncTranslateTest.cpp ----------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinism of asynchronous background translation: for every workload,
/// a run with translation on worker threads must produce exactly the same
/// final architected state and exactly the same statistics (all but the
/// "async.*" group) as the synchronous run — regardless of worker count.
/// Also covers the synchronous fallback (TranslateWorkers = 0), clean
/// shutdown with translations still outstanding, and the interaction with
/// phase-change cache flushing.
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace ildp;
using namespace ildp::vm;

namespace {

struct RunOutcome {
  StopReason Reason;
  ArchState Arch;
  std::vector<std::pair<std::string, uint64_t>> Stats;
  uint64_t AsyncSubmitted = 0;
  uint64_t AsyncInstalled = 0;
  uint64_t AsyncDiscarded = 0;
};

RunOutcome runWorkload(const std::string &Name, unsigned Workers,
                       bool FlushOnPhaseChange = false) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  VmConfig Config;
  Config.AsyncTranslate = Workers > 0;
  Config.TranslateWorkers = Workers;
  Config.FlushOnPhaseChange = FlushOnPhaseChange;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  RunOutcome Out;
  Out.Reason = Vm.run().Reason;
  Out.Arch = Vm.interpreter().state();
  const StatisticSet &S = Vm.stats();
  Out.Stats = S.getWithPrefix("");
  Out.AsyncSubmitted = S.get("async.submitted");
  Out.AsyncInstalled = S.get("async.installed");
  Out.AsyncDiscarded = S.get("async.discarded_stale");
  return Out;
}

bool asyncOnly(const std::string &Name) {
  return Name.rfind("async.", 0) == 0;
}

/// Compares two stat dumps, ignoring the async.* group and any counters
/// named in \p AlsoIgnore.
void expectSameStats(const RunOutcome &Sync, const RunOutcome &Async,
                     const std::vector<std::string> &AlsoIgnore = {}) {
  auto Ignored = [&](const std::string &Name) {
    if (asyncOnly(Name))
      return true;
    for (const std::string &Skip : AlsoIgnore)
      if (Name == Skip)
        return true;
    return false;
  };
  std::map<std::string, uint64_t> A, B;
  for (const auto &[Name, Value] : Sync.Stats)
    if (!Ignored(Name))
      A[Name] = Value;
  for (const auto &[Name, Value] : Async.Stats)
    if (!Ignored(Name))
      B[Name] = Value;
  EXPECT_EQ(A, B);
}

void expectSameArchState(const RunOutcome &Sync, const RunOutcome &Async) {
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Async.Arch.readGpr(Reg), Sync.Arch.readGpr(Reg))
        << "register r" << Reg << " diverged";
  EXPECT_EQ(Async.Arch.Pc, Sync.Arch.Pc);
}

class VmAsyncDeterminism : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(VmAsyncDeterminism, MatchesSynchronousRunExactly) {
  const std::string Workload = GetParam();
  RunOutcome Sync = runWorkload(Workload, 0);
  ASSERT_EQ(Sync.Reason, StopReason::Halted);

  for (unsigned Workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    RunOutcome Async = runWorkload(Workload, Workers);
    ASSERT_EQ(Async.Reason, StopReason::Halted);
    expectSameArchState(Sync, Async);
    expectSameStats(Sync, Async);
    // Everything submitted was settled before run() returned.
    EXPECT_EQ(Async.AsyncSubmitted,
              Async.AsyncInstalled + Async.AsyncDiscarded);
    EXPECT_GT(Async.AsyncSubmitted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, VmAsyncDeterminism,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(VmAsyncTranslate, SyncFallbackHasNoAsyncStats) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
  VmConfig Config;
  Config.AsyncTranslate = true;
  Config.TranslateWorkers = 0; // Explicit synchronous fallback.
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  const StatisticSet &S = Vm.stats();
  EXPECT_FALSE(S.has("async.submitted"));
  EXPECT_FALSE(S.has("async.workers"));

  // And it is bit-identical to a plain VM.
  RunOutcome Plain = runWorkload("gzip", 0);
  RunOutcome Fallback;
  Fallback.Arch = Vm.interpreter().state();
  Fallback.Stats = S.getWithPrefix("");
  expectSameArchState(Plain, Fallback);
  expectSameStats(Plain, Fallback);
}

TEST(VmAsyncTranslate, FlushOnPhaseChangeStaysDeterministic) {
  // The phase-flush decision is made at submission time in async mode, so
  // architected state and the vm.*/exit.*/interp.* statistics still match
  // the synchronous run. tcache.patches legitimately diverges: fragments
  // that were pending at the flush are never installed in async mode, so
  // their install-time patch passes never run (the synchronous run
  // installed them and then threw them away).
  for (const std::string &Workload : {std::string("gzip"),
                                      std::string("perlbmk")}) {
    SCOPED_TRACE(Workload);
    RunOutcome Sync = runWorkload(Workload, 0, /*FlushOnPhaseChange=*/true);
    ASSERT_EQ(Sync.Reason, StopReason::Halted);
    for (unsigned Workers : {1u, 4u}) {
      SCOPED_TRACE("workers=" + std::to_string(Workers));
      RunOutcome Async =
          runWorkload(Workload, Workers, /*FlushOnPhaseChange=*/true);
      ASSERT_EQ(Async.Reason, StopReason::Halted);
      expectSameArchState(Sync, Async);
      expectSameStats(Sync, Async, {"tcache.patches"});
    }
  }
}

TEST(VmAsyncTranslate, BudgetStopDrainsOutstandingTranslations) {
  // Stop mid-run with translations potentially still in flight: run()
  // must settle every submission (installed or accounted as stale) before
  // returning, and destruction must not hang or leak.
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("crafty", Mem, 1);
  VmConfig Config;
  Config.AsyncTranslate = true;
  Config.TranslateWorkers = 4;
  Config.MaxGuestInsts = 60'000; // Well before the workload halts.
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Budget);
  const StatisticSet &S = Vm.stats();
  EXPECT_GT(S.get("async.submitted"), 0u);
  EXPECT_EQ(S.get("async.submitted"),
            S.get("async.installed") + S.get("async.discarded_stale"));
}

TEST(VmAsyncTranslate, OffloadedWorkDominatesInlineWork) {
  RunOutcome Async = runWorkload("gzip", 4);
  uint64_t Inline = 0, Offloaded = 0;
  for (const auto &[Name, Value] : Async.Stats) {
    if (Name == "async.inline_units")
      Inline = Value;
    if (Name == "async.offloaded_units")
      Offloaded = Value;
  }
  ASSERT_GT(Offloaded, 0u);
  // The headline property: at least 90% of translation work leaves the
  // dispatch path.
  EXPECT_GE(Offloaded * 10, (Inline + Offloaded) * 9);
}
