//===- tests/vm/VmEquivalenceTest.cpp -------------------------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the whole system: running a
/// workload through the co-designed VM (interpret -> translate -> execute
/// translated code with chaining, dispatch, and the dual-address RAS)
/// produces exactly the same final architected state as the reference
/// interpreter — for every backend, chaining policy, and accumulator
/// budget.
///
//===----------------------------------------------------------------------===//

#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ildp;
using namespace ildp::vm;

namespace {

struct EqCase {
  const char *Workload;
  iisa::IsaVariant Variant;
  dbt::ChainPolicy Chaining;
  unsigned Accs;
};

class VmEquivalence : public ::testing::TestWithParam<EqCase> {};

/// Reference final state from the plain interpreter.
ArchState referenceRun(const std::string &Name, uint64_t &Insts) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Name, Mem, 1);
  Interpreter Interp(Mem);
  Interp.state().Pc = Img.EntryPc;
  StepInfo Last = Interp.run(2'000'000'000ull);
  EXPECT_EQ(Last.Status, StepStatus::Halted);
  Insts = Interp.retiredCount();
  return Interp.state();
}

} // namespace

TEST_P(VmEquivalence, FinalArchitectedStateMatches) {
  EqCase Case = GetParam();
  uint64_t RefInsts = 0;
  ArchState Ref = referenceRun(Case.Workload, RefInsts);

  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(Case.Workload, Mem, 1);
  VmConfig Config;
  Config.Dbt.Variant = Case.Variant;
  Config.Dbt.Chaining = Case.Chaining;
  Config.Dbt.NumAccumulators = Case.Accs;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  RunResult Result = Vm.run();
  ASSERT_EQ(Result.Reason, StopReason::Halted);

  const ArchState &Got = Vm.interpreter().state();
  for (unsigned Reg = 0; Reg != alpha::NumGprs; ++Reg)
    EXPECT_EQ(Got.readGpr(Reg), Ref.readGpr(Reg))
        << "register r" << Reg << " diverged";

  // The VM must actually have run translated code (not just interpreted).
  const StatisticSet &S = Vm.stats();
  EXPECT_GT(S.get("tcache.fragments"), 0u);
  EXPECT_GT(S.get("vm.vinsts_translated"), S.get("interp.insts"))
      << "most execution should be translated";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsModified, VmEquivalence, ::testing::ValuesIn([] {
      std::vector<EqCase> Cases;
      for (const std::string &W : workloads::workloadNames())
        Cases.push_back({W.c_str(), iisa::IsaVariant::Modified,
                         dbt::ChainPolicy::SwPredRas, 4});
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<EqCase> &Info) {
      return std::string(Info.param.Workload);
    });

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsBasic, VmEquivalence, ::testing::ValuesIn([] {
      std::vector<EqCase> Cases;
      for (const std::string &W : workloads::workloadNames())
        Cases.push_back({W.c_str(), iisa::IsaVariant::Basic,
                         dbt::ChainPolicy::SwPredRas, 4});
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<EqCase> &Info) {
      return std::string(Info.param.Workload);
    });

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsStraight, VmEquivalence, ::testing::ValuesIn([] {
      std::vector<EqCase> Cases;
      for (const std::string &W : workloads::workloadNames())
        Cases.push_back({W.c_str(), iisa::IsaVariant::Straight,
                         dbt::ChainPolicy::SwPredRas, 4});
      return Cases;
    }()),
    [](const ::testing::TestParamInfo<EqCase> &Info) {
      return std::string(Info.param.Workload);
    });

INSTANTIATE_TEST_SUITE_P(
    PolicyAndAccSweep, VmEquivalence,
    ::testing::Values(
        EqCase{"perlbmk", iisa::IsaVariant::Modified,
               dbt::ChainPolicy::NoPred, 4},
        EqCase{"perlbmk", iisa::IsaVariant::Modified,
               dbt::ChainPolicy::SwPredNoRas, 4},
        EqCase{"gap", iisa::IsaVariant::Basic, dbt::ChainPolicy::NoPred, 4},
        EqCase{"parser", iisa::IsaVariant::Basic,
               dbt::ChainPolicy::SwPredNoRas, 4},
        EqCase{"gzip", iisa::IsaVariant::Modified,
               dbt::ChainPolicy::SwPredRas, 8},
        EqCase{"crafty", iisa::IsaVariant::Basic,
               dbt::ChainPolicy::SwPredRas, 8},
        EqCase{"mcf", iisa::IsaVariant::Basic, dbt::ChainPolicy::SwPredRas,
               2},
        EqCase{"vortex", iisa::IsaVariant::Modified,
               dbt::ChainPolicy::SwPredRas, 2}),
    [](const ::testing::TestParamInfo<EqCase> &Info) {
      std::string Name = Info.param.Workload;
      Name += "_";
      Name += dbt::getVariantName(Info.param.Variant);
      for (char C : std::string(dbt::getChainPolicyName(Info.param.Chaining)))
        Name += C == '.' ? '_' : C;
      Name += "_a" + std::to_string(Info.param.Accs);
      return Name;
    });

TEST(VmEquivalence, NoSplitMemoryAblationMatchesToo) {
  uint64_t RefInsts = 0;
  ArchState Ref = referenceRun("gzip", RefInsts);
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
  VmConfig Config;
  Config.Dbt.SplitMemoryOps = false;
  VirtualMachine Vm(Mem, Img.EntryPc, Config);
  ASSERT_EQ(Vm.run().Reason, StopReason::Halted);
  EXPECT_EQ(Vm.interpreter().state().readGpr(alpha::RegV0),
            Ref.readGpr(alpha::RegV0));
}
