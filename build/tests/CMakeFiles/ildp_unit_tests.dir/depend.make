# Empty dependencies file for ildp_unit_tests.
# This may be replaced when dependencies are built.
