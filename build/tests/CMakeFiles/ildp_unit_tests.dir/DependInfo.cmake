
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alpha/AssemblerTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/AssemblerTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/AssemblerTest.cpp.o.d"
  "/root/repo/tests/alpha/DecoderTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/DecoderTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/DecoderTest.cpp.o.d"
  "/root/repo/tests/alpha/DisasmTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/DisasmTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/DisasmTest.cpp.o.d"
  "/root/repo/tests/alpha/InstQueriesTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/InstQueriesTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/InstQueriesTest.cpp.o.d"
  "/root/repo/tests/alpha/SemanticsPropertyTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/SemanticsPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/SemanticsPropertyTest.cpp.o.d"
  "/root/repo/tests/alpha/SemanticsTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/SemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/alpha/SemanticsTest.cpp.o.d"
  "/root/repo/tests/iisa/DisasmTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/DisasmTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/DisasmTest.cpp.o.d"
  "/root/repo/tests/iisa/EncodingPropertyTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/EncodingPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/EncodingPropertyTest.cpp.o.d"
  "/root/repo/tests/iisa/EncodingTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/EncodingTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/EncodingTest.cpp.o.d"
  "/root/repo/tests/iisa/ExecutorEventTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ExecutorEventTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ExecutorEventTest.cpp.o.d"
  "/root/repo/tests/iisa/ExecutorTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ExecutorTest.cpp.o.d"
  "/root/repo/tests/iisa/ValidateTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ValidateTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/iisa/ValidateTest.cpp.o.d"
  "/root/repo/tests/interp/InterpreterTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/interp/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/interp/InterpreterTest.cpp.o.d"
  "/root/repo/tests/interp/InterpreterTrapTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/interp/InterpreterTrapTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/interp/InterpreterTrapTest.cpp.o.d"
  "/root/repo/tests/interp/OpcodeExecutionTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/interp/OpcodeExecutionTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/interp/OpcodeExecutionTest.cpp.o.d"
  "/root/repo/tests/interp/RunSemanticsTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/interp/RunSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/interp/RunSemanticsTest.cpp.o.d"
  "/root/repo/tests/mem/GuestMemoryPropertyTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/mem/GuestMemoryPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/mem/GuestMemoryPropertyTest.cpp.o.d"
  "/root/repo/tests/mem/GuestMemoryTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/mem/GuestMemoryTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/mem/GuestMemoryTest.cpp.o.d"
  "/root/repo/tests/support/BitUtilTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/BitUtilTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/BitUtilTest.cpp.o.d"
  "/root/repo/tests/support/RngTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/RngTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/RngTest.cpp.o.d"
  "/root/repo/tests/support/SatCounterTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/SatCounterTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/SatCounterTest.cpp.o.d"
  "/root/repo/tests/support/StatisticsTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/StatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/StatisticsTest.cpp.o.d"
  "/root/repo/tests/support/TablePrinterTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/TablePrinterTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/TablePrinterTest.cpp.o.d"
  "/root/repo/tests/support/UmbrellaHeaderTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/support/UmbrellaHeaderTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/support/UmbrellaHeaderTest.cpp.o.d"
  "/root/repo/tests/uarch/CachePropertyTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/CachePropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/CachePropertyTest.cpp.o.d"
  "/root/repo/tests/uarch/CacheTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/CacheTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/CacheTest.cpp.o.d"
  "/root/repo/tests/uarch/FrontEndTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/FrontEndTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/FrontEndTest.cpp.o.d"
  "/root/repo/tests/uarch/IldpModelDetailTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/IldpModelDetailTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/IldpModelDetailTest.cpp.o.d"
  "/root/repo/tests/uarch/ModelsTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/ModelsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/ModelsTest.cpp.o.d"
  "/root/repo/tests/uarch/PredictorsTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/PredictorsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/PredictorsTest.cpp.o.d"
  "/root/repo/tests/uarch/SlotRingTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/SlotRingTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/SlotRingTest.cpp.o.d"
  "/root/repo/tests/uarch/SuperscalarDetailTest.cpp" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/SuperscalarDetailTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_unit_tests.dir/uarch/SuperscalarDetailTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ildp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ildp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ildp_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ildp_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/iisa/CMakeFiles/ildp_iisa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
