
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/TrapSweepTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/core/TrapSweepTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/core/TrapSweepTest.cpp.o.d"
  "/root/repo/tests/vm/VmBranchyProgramTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmBranchyProgramTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmBranchyProgramTest.cpp.o.d"
  "/root/repo/tests/vm/VmChainingTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmChainingTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmChainingTest.cpp.o.d"
  "/root/repo/tests/vm/VmConfigSweepTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmConfigSweepTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmConfigSweepTest.cpp.o.d"
  "/root/repo/tests/vm/VmDispatchTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmDispatchTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmDispatchTest.cpp.o.d"
  "/root/repo/tests/vm/VmEquivalenceTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmEquivalenceTest.cpp.o.d"
  "/root/repo/tests/vm/VmStatsConsistencyTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmStatsConsistencyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmStatsConsistencyTest.cpp.o.d"
  "/root/repo/tests/vm/VmTimingTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmTimingTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmTimingTest.cpp.o.d"
  "/root/repo/tests/vm/VmTrapRecoveryTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmTrapRecoveryTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/vm/VmTrapRecoveryTest.cpp.o.d"
  "/root/repo/tests/workloads/WorkloadsTest.cpp" "tests/CMakeFiles/ildp_system_tests.dir/workloads/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_system_tests.dir/workloads/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ildp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ildp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ildp_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ildp_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/iisa/CMakeFiles/ildp_iisa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
