# Empty compiler generated dependencies file for ildp_system_tests.
# This may be replaced when dependencies are built.
