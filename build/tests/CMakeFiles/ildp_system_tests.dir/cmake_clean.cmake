file(REMOVE_RECURSE
  "CMakeFiles/ildp_system_tests.dir/core/TrapSweepTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/core/TrapSweepTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmBranchyProgramTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmBranchyProgramTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmChainingTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmChainingTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmConfigSweepTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmConfigSweepTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmDispatchTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmDispatchTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmEquivalenceTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmEquivalenceTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmStatsConsistencyTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmStatsConsistencyTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmTimingTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmTimingTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/vm/VmTrapRecoveryTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/vm/VmTrapRecoveryTest.cpp.o.d"
  "CMakeFiles/ildp_system_tests.dir/workloads/WorkloadsTest.cpp.o"
  "CMakeFiles/ildp_system_tests.dir/workloads/WorkloadsTest.cpp.o.d"
  "ildp_system_tests"
  "ildp_system_tests.pdb"
  "ildp_system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
