file(REMOVE_RECURSE
  "CMakeFiles/ildp_dbt_tests.dir/core/Fig2GoldenTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/Fig2GoldenTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/FlushTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/FlushTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/FragmentInvariantsTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/FragmentInvariantsTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/LoweringTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/LoweringTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/RandomProgramTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/RandomProgramTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/StrandAllocTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/StrandAllocTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/SuperblockBuilderTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/SuperblockBuilderTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/TranslationCachePropertyTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/TranslationCachePropertyTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/TranslationCacheTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/TranslationCacheTest.cpp.o.d"
  "CMakeFiles/ildp_dbt_tests.dir/core/UsageAnalysisTest.cpp.o"
  "CMakeFiles/ildp_dbt_tests.dir/core/UsageAnalysisTest.cpp.o.d"
  "ildp_dbt_tests"
  "ildp_dbt_tests.pdb"
  "ildp_dbt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_dbt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
