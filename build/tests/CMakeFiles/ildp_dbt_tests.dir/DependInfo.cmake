
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/Fig2GoldenTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/Fig2GoldenTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/Fig2GoldenTest.cpp.o.d"
  "/root/repo/tests/core/FlushTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/FlushTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/FlushTest.cpp.o.d"
  "/root/repo/tests/core/FragmentInvariantsTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/FragmentInvariantsTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/FragmentInvariantsTest.cpp.o.d"
  "/root/repo/tests/core/LoweringTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/LoweringTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/LoweringTest.cpp.o.d"
  "/root/repo/tests/core/RandomProgramTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/RandomProgramTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/RandomProgramTest.cpp.o.d"
  "/root/repo/tests/core/StrandAllocTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/StrandAllocTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/StrandAllocTest.cpp.o.d"
  "/root/repo/tests/core/SuperblockBuilderTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/SuperblockBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/SuperblockBuilderTest.cpp.o.d"
  "/root/repo/tests/core/TranslationCachePropertyTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/TranslationCachePropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/TranslationCachePropertyTest.cpp.o.d"
  "/root/repo/tests/core/TranslationCacheTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/TranslationCacheTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/TranslationCacheTest.cpp.o.d"
  "/root/repo/tests/core/UsageAnalysisTest.cpp" "tests/CMakeFiles/ildp_dbt_tests.dir/core/UsageAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/ildp_dbt_tests.dir/core/UsageAnalysisTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ildp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ildp_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/iisa/CMakeFiles/ildp_iisa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ildp_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
