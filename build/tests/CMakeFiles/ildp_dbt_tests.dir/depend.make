# Empty dependencies file for ildp_dbt_tests.
# This may be replaced when dependencies are built.
