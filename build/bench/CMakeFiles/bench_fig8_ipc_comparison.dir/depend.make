# Empty dependencies file for bench_fig8_ipc_comparison.
# This may be replaced when dependencies are built.
