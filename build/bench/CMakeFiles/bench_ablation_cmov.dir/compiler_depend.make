# Empty compiler generated dependencies file for bench_ablation_cmov.
# This may be replaced when dependencies are built.
