file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cmov.dir/bench_ablation_cmov.cpp.o"
  "CMakeFiles/bench_ablation_cmov.dir/bench_ablation_cmov.cpp.o.d"
  "bench_ablation_cmov"
  "bench_ablation_cmov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cmov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
