# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ildp_bench_util.
