file(REMOVE_RECURSE
  "../lib/libildp_bench_util.a"
)
