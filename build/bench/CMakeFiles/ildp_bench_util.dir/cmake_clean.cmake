file(REMOVE_RECURSE
  "../lib/libildp_bench_util.a"
  "../lib/libildp_bench_util.pdb"
  "CMakeFiles/ildp_bench_util.dir/BenchUtil.cpp.o"
  "CMakeFiles/ildp_bench_util.dir/BenchUtil.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
