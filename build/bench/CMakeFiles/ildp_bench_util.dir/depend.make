# Empty dependencies file for ildp_bench_util.
# This may be replaced when dependencies are built.
