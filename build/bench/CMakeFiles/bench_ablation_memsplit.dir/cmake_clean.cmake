file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memsplit.dir/bench_ablation_memsplit.cpp.o"
  "CMakeFiles/bench_ablation_memsplit.dir/bench_ablation_memsplit.cpp.o.d"
  "bench_ablation_memsplit"
  "bench_ablation_memsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
