# Empty compiler generated dependencies file for bench_ablation_memsplit.
# This may be replaced when dependencies are built.
