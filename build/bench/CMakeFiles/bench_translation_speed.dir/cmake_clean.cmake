file(REMOVE_RECURSE
  "CMakeFiles/bench_translation_speed.dir/bench_translation_speed.cpp.o"
  "CMakeFiles/bench_translation_speed.dir/bench_translation_speed.cpp.o.d"
  "bench_translation_speed"
  "bench_translation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
