# Empty compiler generated dependencies file for bench_translation_speed.
# This may be replaced when dependencies are built.
