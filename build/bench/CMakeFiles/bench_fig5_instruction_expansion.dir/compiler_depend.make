# Empty compiler generated dependencies file for bench_fig5_instruction_expansion.
# This may be replaced when dependencies are built.
