file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_instruction_expansion.dir/bench_fig5_instruction_expansion.cpp.o"
  "CMakeFiles/bench_fig5_instruction_expansion.dir/bench_fig5_instruction_expansion.cpp.o.d"
  "bench_fig5_instruction_expansion"
  "bench_fig5_instruction_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_instruction_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
