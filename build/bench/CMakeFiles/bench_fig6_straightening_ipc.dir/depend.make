# Empty dependencies file for bench_fig6_straightening_ipc.
# This may be replaced when dependencies are built.
