file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_chaining_mispredictions.dir/bench_fig4_chaining_mispredictions.cpp.o"
  "CMakeFiles/bench_fig4_chaining_mispredictions.dir/bench_fig4_chaining_mispredictions.cpp.o.d"
  "bench_fig4_chaining_mispredictions"
  "bench_fig4_chaining_mispredictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_chaining_mispredictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
