# Empty compiler generated dependencies file for bench_fig4_chaining_mispredictions.
# This may be replaced when dependencies are built.
