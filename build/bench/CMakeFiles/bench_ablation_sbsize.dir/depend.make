# Empty dependencies file for bench_ablation_sbsize.
# This may be replaced when dependencies are built.
