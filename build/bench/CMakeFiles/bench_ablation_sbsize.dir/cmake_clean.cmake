file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sbsize.dir/bench_ablation_sbsize.cpp.o"
  "CMakeFiles/bench_ablation_sbsize.dir/bench_ablation_sbsize.cpp.o.d"
  "bench_ablation_sbsize"
  "bench_ablation_sbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
