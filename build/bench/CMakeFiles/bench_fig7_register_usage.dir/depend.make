# Empty dependencies file for bench_fig7_register_usage.
# This may be replaced when dependencies are built.
