# Empty compiler generated dependencies file for bench_fig9_machine_parameters.
# This may be replaced when dependencies are built.
