file(REMOVE_RECURSE
  "libildp_uarch.a"
)
