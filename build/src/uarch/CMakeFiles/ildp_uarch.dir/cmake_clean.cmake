file(REMOVE_RECURSE
  "CMakeFiles/ildp_uarch.dir/Cache.cpp.o"
  "CMakeFiles/ildp_uarch.dir/Cache.cpp.o.d"
  "CMakeFiles/ildp_uarch.dir/FrontEnd.cpp.o"
  "CMakeFiles/ildp_uarch.dir/FrontEnd.cpp.o.d"
  "CMakeFiles/ildp_uarch.dir/IldpModel.cpp.o"
  "CMakeFiles/ildp_uarch.dir/IldpModel.cpp.o.d"
  "CMakeFiles/ildp_uarch.dir/Predictors.cpp.o"
  "CMakeFiles/ildp_uarch.dir/Predictors.cpp.o.d"
  "CMakeFiles/ildp_uarch.dir/SuperscalarModel.cpp.o"
  "CMakeFiles/ildp_uarch.dir/SuperscalarModel.cpp.o.d"
  "libildp_uarch.a"
  "libildp_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
