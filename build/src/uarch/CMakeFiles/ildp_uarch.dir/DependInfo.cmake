
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/Cache.cpp" "src/uarch/CMakeFiles/ildp_uarch.dir/Cache.cpp.o" "gcc" "src/uarch/CMakeFiles/ildp_uarch.dir/Cache.cpp.o.d"
  "/root/repo/src/uarch/FrontEnd.cpp" "src/uarch/CMakeFiles/ildp_uarch.dir/FrontEnd.cpp.o" "gcc" "src/uarch/CMakeFiles/ildp_uarch.dir/FrontEnd.cpp.o.d"
  "/root/repo/src/uarch/IldpModel.cpp" "src/uarch/CMakeFiles/ildp_uarch.dir/IldpModel.cpp.o" "gcc" "src/uarch/CMakeFiles/ildp_uarch.dir/IldpModel.cpp.o.d"
  "/root/repo/src/uarch/Predictors.cpp" "src/uarch/CMakeFiles/ildp_uarch.dir/Predictors.cpp.o" "gcc" "src/uarch/CMakeFiles/ildp_uarch.dir/Predictors.cpp.o.d"
  "/root/repo/src/uarch/SuperscalarModel.cpp" "src/uarch/CMakeFiles/ildp_uarch.dir/SuperscalarModel.cpp.o" "gcc" "src/uarch/CMakeFiles/ildp_uarch.dir/SuperscalarModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
