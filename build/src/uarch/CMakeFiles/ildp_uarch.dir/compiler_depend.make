# Empty compiler generated dependencies file for ildp_uarch.
# This may be replaced when dependencies are built.
