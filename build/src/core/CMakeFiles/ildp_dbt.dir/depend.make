# Empty dependencies file for ildp_dbt.
# This may be replaced when dependencies are built.
