file(REMOVE_RECURSE
  "CMakeFiles/ildp_dbt.dir/CodeGen.cpp.o"
  "CMakeFiles/ildp_dbt.dir/CodeGen.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/Config.cpp.o"
  "CMakeFiles/ildp_dbt.dir/Config.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/Lowering.cpp.o"
  "CMakeFiles/ildp_dbt.dir/Lowering.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/StrandAlloc.cpp.o"
  "CMakeFiles/ildp_dbt.dir/StrandAlloc.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/SuperblockBuilder.cpp.o"
  "CMakeFiles/ildp_dbt.dir/SuperblockBuilder.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/TranslationCache.cpp.o"
  "CMakeFiles/ildp_dbt.dir/TranslationCache.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/Translator.cpp.o"
  "CMakeFiles/ildp_dbt.dir/Translator.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/TrapRecovery.cpp.o"
  "CMakeFiles/ildp_dbt.dir/TrapRecovery.cpp.o.d"
  "CMakeFiles/ildp_dbt.dir/UsageAnalysis.cpp.o"
  "CMakeFiles/ildp_dbt.dir/UsageAnalysis.cpp.o.d"
  "libildp_dbt.a"
  "libildp_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
