
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CodeGen.cpp" "src/core/CMakeFiles/ildp_dbt.dir/CodeGen.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/CodeGen.cpp.o.d"
  "/root/repo/src/core/Config.cpp" "src/core/CMakeFiles/ildp_dbt.dir/Config.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/Config.cpp.o.d"
  "/root/repo/src/core/Lowering.cpp" "src/core/CMakeFiles/ildp_dbt.dir/Lowering.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/Lowering.cpp.o.d"
  "/root/repo/src/core/StrandAlloc.cpp" "src/core/CMakeFiles/ildp_dbt.dir/StrandAlloc.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/StrandAlloc.cpp.o.d"
  "/root/repo/src/core/SuperblockBuilder.cpp" "src/core/CMakeFiles/ildp_dbt.dir/SuperblockBuilder.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/SuperblockBuilder.cpp.o.d"
  "/root/repo/src/core/TranslationCache.cpp" "src/core/CMakeFiles/ildp_dbt.dir/TranslationCache.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/TranslationCache.cpp.o.d"
  "/root/repo/src/core/Translator.cpp" "src/core/CMakeFiles/ildp_dbt.dir/Translator.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/Translator.cpp.o.d"
  "/root/repo/src/core/TrapRecovery.cpp" "src/core/CMakeFiles/ildp_dbt.dir/TrapRecovery.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/TrapRecovery.cpp.o.d"
  "/root/repo/src/core/UsageAnalysis.cpp" "src/core/CMakeFiles/ildp_dbt.dir/UsageAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/ildp_dbt.dir/UsageAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iisa/CMakeFiles/ildp_iisa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
