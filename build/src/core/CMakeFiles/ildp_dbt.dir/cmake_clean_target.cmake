file(REMOVE_RECURSE
  "libildp_dbt.a"
)
