file(REMOVE_RECURSE
  "CMakeFiles/ildp_alpha.dir/AlphaInst.cpp.o"
  "CMakeFiles/ildp_alpha.dir/AlphaInst.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/AlphaIsa.cpp.o"
  "CMakeFiles/ildp_alpha.dir/AlphaIsa.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/Assembler.cpp.o"
  "CMakeFiles/ildp_alpha.dir/Assembler.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/Decoder.cpp.o"
  "CMakeFiles/ildp_alpha.dir/Decoder.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/Disasm.cpp.o"
  "CMakeFiles/ildp_alpha.dir/Disasm.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/Encoder.cpp.o"
  "CMakeFiles/ildp_alpha.dir/Encoder.cpp.o.d"
  "CMakeFiles/ildp_alpha.dir/Semantics.cpp.o"
  "CMakeFiles/ildp_alpha.dir/Semantics.cpp.o.d"
  "libildp_alpha.a"
  "libildp_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
