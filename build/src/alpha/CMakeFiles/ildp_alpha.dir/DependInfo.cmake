
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alpha/AlphaInst.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/AlphaInst.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/AlphaInst.cpp.o.d"
  "/root/repo/src/alpha/AlphaIsa.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/AlphaIsa.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/AlphaIsa.cpp.o.d"
  "/root/repo/src/alpha/Assembler.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/Assembler.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/Assembler.cpp.o.d"
  "/root/repo/src/alpha/Decoder.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/Decoder.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/Decoder.cpp.o.d"
  "/root/repo/src/alpha/Disasm.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/Disasm.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/Disasm.cpp.o.d"
  "/root/repo/src/alpha/Encoder.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/Encoder.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/Encoder.cpp.o.d"
  "/root/repo/src/alpha/Semantics.cpp" "src/alpha/CMakeFiles/ildp_alpha.dir/Semantics.cpp.o" "gcc" "src/alpha/CMakeFiles/ildp_alpha.dir/Semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
