file(REMOVE_RECURSE
  "libildp_alpha.a"
)
