# Empty compiler generated dependencies file for ildp_alpha.
# This may be replaced when dependencies are built.
