file(REMOVE_RECURSE
  "libildp_iisa.a"
)
