file(REMOVE_RECURSE
  "CMakeFiles/ildp_iisa.dir/Disasm.cpp.o"
  "CMakeFiles/ildp_iisa.dir/Disasm.cpp.o.d"
  "CMakeFiles/ildp_iisa.dir/Encoding.cpp.o"
  "CMakeFiles/ildp_iisa.dir/Encoding.cpp.o.d"
  "CMakeFiles/ildp_iisa.dir/Executor.cpp.o"
  "CMakeFiles/ildp_iisa.dir/Executor.cpp.o.d"
  "CMakeFiles/ildp_iisa.dir/IisaInst.cpp.o"
  "CMakeFiles/ildp_iisa.dir/IisaInst.cpp.o.d"
  "libildp_iisa.a"
  "libildp_iisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_iisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
