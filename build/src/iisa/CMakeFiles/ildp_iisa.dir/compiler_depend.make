# Empty compiler generated dependencies file for ildp_iisa.
# This may be replaced when dependencies are built.
