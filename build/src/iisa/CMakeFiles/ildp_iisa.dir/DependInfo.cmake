
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iisa/Disasm.cpp" "src/iisa/CMakeFiles/ildp_iisa.dir/Disasm.cpp.o" "gcc" "src/iisa/CMakeFiles/ildp_iisa.dir/Disasm.cpp.o.d"
  "/root/repo/src/iisa/Encoding.cpp" "src/iisa/CMakeFiles/ildp_iisa.dir/Encoding.cpp.o" "gcc" "src/iisa/CMakeFiles/ildp_iisa.dir/Encoding.cpp.o.d"
  "/root/repo/src/iisa/Executor.cpp" "src/iisa/CMakeFiles/ildp_iisa.dir/Executor.cpp.o" "gcc" "src/iisa/CMakeFiles/ildp_iisa.dir/Executor.cpp.o.d"
  "/root/repo/src/iisa/IisaInst.cpp" "src/iisa/CMakeFiles/ildp_iisa.dir/IisaInst.cpp.o" "gcc" "src/iisa/CMakeFiles/ildp_iisa.dir/IisaInst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
