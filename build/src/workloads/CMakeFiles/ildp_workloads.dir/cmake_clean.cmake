file(REMOVE_RECURSE
  "CMakeFiles/ildp_workloads.dir/CallKernels.cpp.o"
  "CMakeFiles/ildp_workloads.dir/CallKernels.cpp.o.d"
  "CMakeFiles/ildp_workloads.dir/Common.cpp.o"
  "CMakeFiles/ildp_workloads.dir/Common.cpp.o.d"
  "CMakeFiles/ildp_workloads.dir/DispatchKernels.cpp.o"
  "CMakeFiles/ildp_workloads.dir/DispatchKernels.cpp.o.d"
  "CMakeFiles/ildp_workloads.dir/LoopKernels.cpp.o"
  "CMakeFiles/ildp_workloads.dir/LoopKernels.cpp.o.d"
  "libildp_workloads.a"
  "libildp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
