file(REMOVE_RECURSE
  "libildp_workloads.a"
)
