# Empty dependencies file for ildp_workloads.
# This may be replaced when dependencies are built.
