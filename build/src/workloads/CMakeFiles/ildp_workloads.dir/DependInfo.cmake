
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/CallKernels.cpp" "src/workloads/CMakeFiles/ildp_workloads.dir/CallKernels.cpp.o" "gcc" "src/workloads/CMakeFiles/ildp_workloads.dir/CallKernels.cpp.o.d"
  "/root/repo/src/workloads/Common.cpp" "src/workloads/CMakeFiles/ildp_workloads.dir/Common.cpp.o" "gcc" "src/workloads/CMakeFiles/ildp_workloads.dir/Common.cpp.o.d"
  "/root/repo/src/workloads/DispatchKernels.cpp" "src/workloads/CMakeFiles/ildp_workloads.dir/DispatchKernels.cpp.o" "gcc" "src/workloads/CMakeFiles/ildp_workloads.dir/DispatchKernels.cpp.o.d"
  "/root/repo/src/workloads/LoopKernels.cpp" "src/workloads/CMakeFiles/ildp_workloads.dir/LoopKernels.cpp.o" "gcc" "src/workloads/CMakeFiles/ildp_workloads.dir/LoopKernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
