file(REMOVE_RECURSE
  "libildp_mem.a"
)
