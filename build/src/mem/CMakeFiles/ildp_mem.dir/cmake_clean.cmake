file(REMOVE_RECURSE
  "CMakeFiles/ildp_mem.dir/GuestMemory.cpp.o"
  "CMakeFiles/ildp_mem.dir/GuestMemory.cpp.o.d"
  "libildp_mem.a"
  "libildp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
