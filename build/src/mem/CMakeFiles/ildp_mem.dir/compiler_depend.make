# Empty compiler generated dependencies file for ildp_mem.
# This may be replaced when dependencies are built.
