file(REMOVE_RECURSE
  "libildp_vm.a"
)
