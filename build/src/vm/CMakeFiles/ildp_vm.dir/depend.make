# Empty dependencies file for ildp_vm.
# This may be replaced when dependencies are built.
