file(REMOVE_RECURSE
  "CMakeFiles/ildp_vm.dir/VirtualMachine.cpp.o"
  "CMakeFiles/ildp_vm.dir/VirtualMachine.cpp.o.d"
  "libildp_vm.a"
  "libildp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
