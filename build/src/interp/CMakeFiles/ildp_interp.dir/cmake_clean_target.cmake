file(REMOVE_RECURSE
  "libildp_interp.a"
)
