file(REMOVE_RECURSE
  "CMakeFiles/ildp_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/ildp_interp.dir/Interpreter.cpp.o.d"
  "libildp_interp.a"
  "libildp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
