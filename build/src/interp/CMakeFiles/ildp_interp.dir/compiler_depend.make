# Empty compiler generated dependencies file for ildp_interp.
# This may be replaced when dependencies are built.
