# Empty compiler generated dependencies file for ildp_support.
# This may be replaced when dependencies are built.
