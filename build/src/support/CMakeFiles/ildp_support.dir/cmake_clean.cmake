file(REMOVE_RECURSE
  "CMakeFiles/ildp_support.dir/Statistics.cpp.o"
  "CMakeFiles/ildp_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/ildp_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/ildp_support.dir/TablePrinter.cpp.o.d"
  "libildp_support.a"
  "libildp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ildp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
