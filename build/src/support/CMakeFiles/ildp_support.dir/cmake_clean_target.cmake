file(REMOVE_RECURSE
  "libildp_support.a"
)
