file(REMOVE_RECURSE
  "CMakeFiles/inspect_fragments.dir/inspect_fragments.cpp.o"
  "CMakeFiles/inspect_fragments.dir/inspect_fragments.cpp.o.d"
  "inspect_fragments"
  "inspect_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
