# Empty compiler generated dependencies file for inspect_fragments.
# This may be replaced when dependencies are built.
