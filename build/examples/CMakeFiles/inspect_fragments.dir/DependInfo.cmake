
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/inspect_fragments.cpp" "examples/CMakeFiles/inspect_fragments.dir/inspect_fragments.cpp.o" "gcc" "examples/CMakeFiles/inspect_fragments.dir/inspect_fragments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ildp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ildp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/iisa/CMakeFiles/ildp_iisa.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/ildp_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ildp_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/ildp_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ildp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ildp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ildp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
