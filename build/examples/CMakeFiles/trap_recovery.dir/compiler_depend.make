# Empty compiler generated dependencies file for trap_recovery.
# This may be replaced when dependencies are built.
