file(REMOVE_RECURSE
  "CMakeFiles/trap_recovery.dir/trap_recovery.cpp.o"
  "CMakeFiles/trap_recovery.dir/trap_recovery.cpp.o.d"
  "trap_recovery"
  "trap_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
