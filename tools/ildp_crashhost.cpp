//===- tools/ildp_crashhost.cpp - Crash-testable fleet host process -------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The child half of the multi-process fleet (DESIGN.md §15): a single
/// fleet host process the HostSupervisor spawns N of over one shared
/// store, and the unit every crash test kills. Three modes:
///
///   ildp-crashhost --serve [--store <path>] [--workers N]
///     Tagged line protocol on stdin/stdout (the HostSupervisor wire
///     format):
///       <-  <id> run <workload> [tenant=..] [priority=..] [max_insts=..]
///                              [deadline_us=..]
///       ->  <id> ok <checksum-hex> insts=<n> cost=<n> worker=<n>
///       ->  <id> err <status> <detail> [retry_after_ms=<n>]
///     Lines starting with '#' are informational. A bare "quit" (or EOF)
///     drains queued requests and exits 0.
///
///   ildp-crashhost --save <workload> [--store <path>] [--scale N]
///     Runs one workload with PersistPath = store: a single writer doing
///     the full load -> execute -> saveMerged cycle. The crash-schedule
///     harness points ILDP_CRASH_SCHEDULE at this mode to kill writers
///     at every named point of the save path.
///
///   ildp-crashhost --hold-lock [--store <path>]
///     Acquires <store>.lock (persist::StoreLock), prints "held", and
///     sleeps until killed — the stand-in for a writer that died holding
///     the lock, used by the lock-recovery tests.
///
/// Crash schedules cross the process boundary via ILDP_CRASH_SCHEDULE
/// (support/CrashInjector.h); every mode honors them. The serve mode
/// additionally fires CrashPoint::MidRequest with the request genuinely
/// in flight, so a killed host always orphans work the supervisor must
/// resolve typed.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "persist/StoreLock.h"
#include "serve/ExecutionScheduler.h"
#include "support/CrashInjector.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ildp;
using namespace ildp::serve;

namespace {

/// Parses the option tail of a "run" request. Returns nullptr on success
/// or a static error detail.
const char *parseRunRequest(std::istringstream &In, ExecRequest &Req) {
  In >> Req.Workload;
  if (Req.Workload.empty())
    return "missing-workload";
  std::string Opt;
  while (In >> Opt) {
    size_t Eq = Opt.find('=');
    std::string Key = Opt.substr(0, Eq);
    std::string Val = Eq == std::string::npos ? "" : Opt.substr(Eq + 1);
    if (Key == "tenant")
      Req.Tenant = Val;
    else if (Key == "priority") {
      if (!parsePriorityName(Val, Req.Lane))
        return "bad-priority";
    } else if (Key == "max_insts")
      Req.MaxGuestInsts = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "deadline_us")
      Req.DeadlineMicros = std::strtoull(Val.c_str(), nullptr, 0);
    else if (Key == "cache_bytes")
      Req.CodeCacheBytes = std::strtoull(Val.c_str(), nullptr, 0);
    else
      return "unknown-option";
  }
  return nullptr;
}

/// Formats one response line (without the trailing newline).
std::string formatResponse(uint64_t Id, const ExecResponse &Resp) {
  char Buf[160];
  if (Resp.ok()) {
    std::snprintf(Buf, sizeof(Buf),
                  "%llu ok %llx insts=%llu cost=%llu worker=%u",
                  (unsigned long long)Id, (unsigned long long)Resp.Checksum,
                  (unsigned long long)Resp.GuestInsts,
                  (unsigned long long)Resp.Stats.get("dbt.cost.total"),
                  Resp.Worker);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%llu err %s %s", (unsigned long long)Id,
                getExecStatusName(Resp.Status),
                *Resp.Detail ? Resp.Detail : "-");
  std::string Out = Buf;
  if (Resp.RetryAfterMs)
    Out += " retry_after_ms=" + std::to_string(Resp.RetryAfterMs);
  return Out;
}

int serveMode(const std::string &StorePath, unsigned Workers) {
  FleetConfig Config;
  Config.Workers = Workers;
  Config.StorePath = StorePath;
  ExecutionScheduler Sched(Config);
  Sched.fleet().registerWorkloads();

  std::mutex OutMutex; // Response lines come from waiter threads.
  auto Emit = [&OutMutex](const std::string &Line) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    std::fputs(Line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  Emit("# host pid=" + std::to_string(long(::getpid())) + " store=" +
       (StorePath.empty() ? "cold"
                          : (Sched.fleet().storeLoaded() ? "warm" : "cold")));

  // One waiter thread per in-flight request: it blocks on the future and
  // emits the tagged response, so the read loop keeps accepting (the
  // supervisor pipelines) while earlier requests still execute. Request
  // volume per host is test-scale; thread-per-request is the simple
  // correct tool.
  std::vector<std::thread> Waiters;

  char LineBuf[4096];
  while (std::fgets(LineBuf, sizeof(LineBuf), stdin)) {
    std::string Line(LineBuf);
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line == "quit" || Line == "exit")
      break;

    std::istringstream In(Line);
    uint64_t Id = 0;
    if (!(In >> Id)) {
      Emit("# bad-line (no id): " + Line);
      continue;
    }
    std::string Cmd;
    In >> Cmd;
    if (Cmd != "run") {
      Emit(std::to_string(Id) + " err bad-image bad-command");
      continue;
    }
    ExecRequest Req;
    if (const char *Problem = parseRunRequest(In, Req)) {
      Emit(std::to_string(Id) + " err bad-image " + Problem);
      continue;
    }

    std::future<ExecResponse> Future = Sched.submit(std::move(Req));
    // The injectable "host died serving a request" moment: the request is
    // admitted and owned by a worker (or the queue) when the process
    // vanishes — exactly what a real OOM-kill orphans.
    support::crashPoint(support::CrashPoint::MidRequest);
    Waiters.emplace_back(
        [&Emit, Id, Future = std::move(Future)]() mutable {
          Emit(formatResponse(Id, Future.get()));
        });
  }

  // Drain: everything admitted answers before the host exits.
  Sched.shutdown(/*FinishQueued=*/true);
  for (std::thread &W : Waiters)
    W.join();
  return 0;
}

int saveMode(const std::string &StorePath, const std::string &Workload,
             unsigned Scale) {
  if (StorePath.empty()) {
    std::fprintf(stderr, "--save requires --store\n");
    return 2;
  }
  const std::vector<std::string> &Names = workloads::workloadNames();
  if (std::find(Names.begin(), Names.end(), Workload) == Names.end()) {
    std::fprintf(stderr, "unknown workload %s\n", Workload.c_str());
    return 2;
  }
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload(Workload, Mem, Scale);
  vm::VmConfig Config;
  Config.PersistPath = StorePath;
  vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
  if (Vm.run().Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt\n", Workload.c_str());
    return 1;
  }
  // The save (with its crash points) already ran inside run()'s epilogue;
  // report what the writer observed for harness diagnostics.
  std::printf("saved %s checksum=%llx cost=%llu\n", Workload.c_str(),
              (unsigned long long)Vm.interpreter().state().readGpr(
                  alpha::RegV0),
              (unsigned long long)Vm.stats().get("dbt.cost.total"));
  return 0;
}

int holdLockMode(const std::string &StorePath) {
  if (StorePath.empty()) {
    std::fprintf(stderr, "--hold-lock requires --store\n");
    return 2;
  }
  persist::StoreLock Lock(StorePath + ".lock");
  if (!Lock.held()) {
    std::printf("not-held\n");
    std::fflush(stdout);
    return 1;
  }
  std::printf("held\n");
  std::fflush(stdout);
  // Hold until killed. The bound only keeps an orphaned holder from
  // outliving a crashed test driver forever.
  std::this_thread::sleep_for(std::chrono::seconds(120));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string StorePath, SaveWorkload;
  unsigned Workers = 1, Scale = 1;
  bool Serve = false, HoldLock = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--serve")
      Serve = true;
    else if (Arg == "--hold-lock")
      HoldLock = true;
    else if (Arg == "--store" && Next())
      StorePath = argv[I];
    else if (Arg == "--save" && Next())
      SaveWorkload = argv[I];
    else if (Arg == "--workers" && Next())
      Workers = unsigned(std::strtoul(argv[I], nullptr, 0));
    else if (Arg == "--scale" && Next())
      Scale = unsigned(std::strtoul(argv[I], nullptr, 0));
    else {
      std::fprintf(stderr,
                   "usage: %s --serve [--store <path>] [--workers N]\n"
                   "       %s --save <workload> --store <path> [--scale N]\n"
                   "       %s --hold-lock --store <path>\n",
                   argv[0], argv[0], argv[0]);
      return 2;
    }
  }
  if (HoldLock)
    return holdLockMode(StorePath);
  if (!SaveWorkload.empty())
    return saveMode(StorePath, SaveWorkload, Scale);
  if (Serve)
    return serveMode(StorePath, Workers ? Workers : 1);
  std::fprintf(stderr, "one of --serve, --save, --hold-lock required\n");
  return 2;
}
