//===- tools/ildp_crashtest.cpp - Crash-point x schedule chaos harness ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §15 crash-model acceptance harness: kills real processes at every
/// named crash point (support/CrashInjector.h), under single-writer and
/// multi-writer schedules, and asserts the §15 contract cell by cell:
///
///  - the store is ALWAYS old-or-new after a crash — it opens valid and
///    every image saved before the crash still round-trips warm (never
///    corrupt, never silently empty);
///  - a lock left by a dead writer never blocks a live writer past one
///    takeover — the next save completes and removes the lock file;
///  - in the supervised fleet (HostSupervisor + ildp-crashhost --serve),
///    a host crash resolves every in-flight future as a typed HostCrashed
///    rejection (zero hung futures), survivors keep serving, and the
///    restarted host serves its first request warm (cost == 0: no
///    translation work re-done).
///
/// The store points (mid_tmp_write, post_tmp_pre_rename, mid_merge_read,
/// post_rename_pre_unlock) each run a single-writer and a multi-writer
/// cell against --save children; mid_request runs a single-host and a
/// multi-host cell against a supervised fleet. Results are written as a
/// JSON artifact (--json <path>, default CRASHTEST_results.json); the
/// exit status is the number of failed cells.
///
///   ildp-crashtest [--json <path>] [--host <binary>] [--keep-dirs]
///                  [--points <p1,p2,...>]
///
//===----------------------------------------------------------------------===//

#include "persist/CacheStore.h"
#include "serve/HostSupervisor.h"
#include "support/CrashInjector.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;
#endif

#ifndef ILDP_CRASHHOST_BIN
#define ILDP_CRASHHOST_BIN "ildp-crashhost"
#endif

using namespace ildp;
using namespace ildp::serve;
using support::CrashInjector;
using support::CrashPoint;

namespace {

#ifndef _WIN32

std::string HostBinary = ILDP_CRASHHOST_BIN;
bool KeepDirs = false;

/// One cell's verdict for the JSON artifact.
struct CellResult {
  std::string Point;
  std::string Schedule;
  bool Passed = true;
  std::string Detail; // First failure, or "".
};

/// The cell currently being filled; check() appends to it.
CellResult *Cell = nullptr;

bool check(bool Cond, const std::string &What) {
  if (Cond)
    return true;
  std::fprintf(stderr, "FAIL [%s x %s]: %s\n", Cell->Point.c_str(),
               Cell->Schedule.c_str(), What.c_str());
  if (Cell->Passed) {
    Cell->Passed = false;
    Cell->Detail = What;
  }
  return false;
}

/// What happened to a finished child.
struct ChildExit {
  bool Exited = false;   ///< False: timed out (the harness's hang bound).
  int ExitCode = -1;     ///< Exit status, or 128+signal for a signal death.
  std::string Output;    ///< Captured stdout.
};

/// Spawns the host binary with \p Args and an optional crash schedule,
/// capturing stdout. Returns the pid (or -1) and the read end of the
/// stdout pipe.
pid_t spawnChild(const std::vector<std::string> &Args,
                 const std::string &CrashSchedule, int &OutFd) {
  // O_CLOEXEC: the multi-writer cells spawn children concurrently, and a
  // sibling inheriting this child's stdout write end would defer EOF (and
  // so waitChild's completion) until every concurrent child exited.
  int Pipe[2];
  if (::pipe2(Pipe, O_CLOEXEC) != 0)
    return -1;

  std::vector<std::string> Argv = {HostBinary};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  std::vector<char *> Cv;
  for (std::string &A : Argv)
    Cv.push_back(A.data());
  Cv.push_back(nullptr);

  std::vector<char *> Envp;
  for (char **E = environ; *E; ++E)
    if (std::strncmp(*E, "ILDP_CRASH_SCHEDULE=", 20) != 0)
      Envp.push_back(*E);
  std::string Sched = "ILDP_CRASH_SCHEDULE=" + CrashSchedule;
  if (!CrashSchedule.empty())
    Envp.push_back(Sched.data());
  Envp.push_back(nullptr);

  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  posix_spawn_file_actions_adddup2(&Actions, Pipe[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&Actions, Pipe[0]);
  posix_spawn_file_actions_addclose(&Actions, Pipe[1]);

  pid_t Pid = -1;
  int Err = ::posix_spawn(&Pid, HostBinary.c_str(), &Actions, nullptr,
                          Cv.data(), Envp.data());
  posix_spawn_file_actions_destroy(&Actions);
  ::close(Pipe[1]);
  if (Err != 0) {
    ::close(Pipe[0]);
    return -1;
  }
  OutFd = Pipe[0];
  return Pid;
}

/// Drains \p OutFd and reaps \p Pid, bounding the wait: a crash-safety
/// harness must itself never hang on a wedged child.
ChildExit waitChild(pid_t Pid, int OutFd, unsigned TimeoutMillis = 60'000) {
  ChildExit R;
  // The child's stdout is small (a few lines); read it to EOF first. EOF
  // arrives at process exit, so the timeout covers the whole child run.
  ::fcntl(OutFd, F_SETFL, O_NONBLOCK);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMillis);
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(OutFd, Buf, sizeof(Buf));
    if (N > 0) {
      R.Output.append(Buf, size_t(N));
      continue;
    }
    if (N == 0)
      break; // EOF: the child is gone (or closed stdout).
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      break;
    if (std::chrono::steady_clock::now() > Deadline) {
      ::close(OutFd);
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      return R; // Exited=false: hang.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(OutFd);
  for (;;) {
    int Status = 0;
    pid_t W = ::waitpid(Pid, &Status, WNOHANG);
    if (W == Pid) {
      R.Exited = true;
      if (WIFEXITED(Status))
        R.ExitCode = WEXITSTATUS(Status);
      else if (WIFSIGNALED(Status))
        R.ExitCode = 128 + WTERMSIG(Status);
      return R;
    }
    if (W < 0)
      return R; // Reaped elsewhere; treat as hang (should not happen).
    if (std::chrono::steady_clock::now() > Deadline) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      return R;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Runs one --save child to completion.
ChildExit runSave(const std::string &Store, const std::string &Workload,
                  const std::string &CrashSchedule = "") {
  int OutFd = -1;
  pid_t Pid =
      spawnChild({"--save", Workload, "--store", Store}, CrashSchedule, OutFd);
  if (Pid < 0)
    return ChildExit{};
  return waitChild(Pid, OutFd);
}

/// The round-trip probe: re-saving a workload against a store that
/// already holds its image warm-starts, so the writer reports cost=0.
/// Proves the image's payload survived AND decodes (never silently
/// empty, never corrupt).
bool imageRoundTripsWarm(const std::string &Store,
                         const std::string &Workload) {
  ChildExit R = runSave(Store, Workload);
  return R.Exited && R.ExitCode == 0 &&
         R.Output.find("cost=0") != std::string::npos;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Fresh per-cell scratch directory.
std::string makeTempDir() {
  const char *Base = ::getenv("TMPDIR");
  std::string Template =
      std::string(Base && *Base ? Base : "/tmp") + "/ildp-crashtest-XXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  if (!::mkdtemp(Buf.data()))
    return std::string();
  return std::string(Buf.data());
}

void removeTree(const std::string &Dir) {
  if (KeepDirs || Dir.empty())
    return;
  // The cell owns every file in its scratch dir; a bounded manual sweep
  // avoids shelling out.
  for (const char *Suffix :
       {"/store.tstore", "/store.tstore.lock", "/store.tstore.lock.break"}) {
    std::remove((Dir + Suffix).c_str());
  }
  // Orphaned staging files have unique names; best-effort glob-free sweep
  // via readdir would be overkill — rmdir failing just leaves an empty
  // temp dir behind.
  ::rmdir(Dir.c_str());
}

/// Asserts the store at \p Path opens valid and still round-trips every
/// workload in \p MustHold warm. The heart of "old-or-new, never
/// corrupt".
bool checkStoreIntact(const std::string &Path,
                      const std::vector<std::string> &MustHold) {
  persist::CacheStore Store;
  persist::StoreStatus St = Store.open(Path);
  bool Ok = check(St == persist::StoreStatus::Ok,
                  std::string("store reopen: ") +
                      persist::getStoreStatusName(St));
  Ok &= check(Store.imageCount() >= MustHold.size(),
              "store silently lost images: holds " +
                  std::to_string(Store.imageCount()) + ", expected >= " +
                  std::to_string(MustHold.size()));
  for (const std::string &W : MustHold)
    Ok &= check(imageRoundTripsWarm(Path, W),
                "image " + W + " no longer round-trips warm");
  return Ok;
}

//===----------------------------------------------------------------------===//
// Store cells: crash a --save writer at a named point.
//===----------------------------------------------------------------------===//

void runStoreSingleWriterCell(CrashPoint Point) {
  std::string Dir = makeTempDir();
  std::string Store = Dir + "/store.tstore";

  // Baseline: one good image on disk — the "old" state the crash must
  // never destroy.
  ChildExit Seed = runSave(Store, "gzip");
  if (!check(Seed.Exited && Seed.ExitCode == 0, "baseline seed save failed"))
    return removeTree(Dir);

  // Crash a second writer at the named point.
  std::string Sched = std::string(getCrashPointName(Point)) + "=1";
  ChildExit Crashed = runSave(Store, "mcf", Sched);
  check(Crashed.Exited, "crashing writer hung");
  check(Crashed.ExitCode == CrashInjector::ExitCode,
        "crashing writer exited " + std::to_string(Crashed.ExitCode) +
            ", expected " + std::to_string(CrashInjector::ExitCode));

  // Old-or-new: the baseline image must have survived every point; after
  // post_rename_pre_unlock the new image is also committed.
  std::vector<std::string> MustHold = {"gzip"};
  if (Point == CrashPoint::PostRenamePreUnlock)
    MustHold.push_back("mcf");
  checkStoreIntact(Store, MustHold);

  // Lock recovery: the writer died holding <store>.lock at every store
  // point. The next live writer must complete within one takeover — a
  // bounded wait, not the 30 s live-holder timeout.
  auto T0 = std::chrono::steady_clock::now();
  ChildExit Recovery = runSave(Store, "vortex");
  double TookMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  check(Recovery.Exited && Recovery.ExitCode == 0,
        "recovery writer did not complete over the dead holder's lock");
  check(TookMs < 20'000, "recovery took " + std::to_string(TookMs) +
                             " ms: dead lock not broken within one takeover");
  check(!fileExists(Store + ".lock"),
        "lock file still present after recovery writer exited");

  MustHold.push_back("vortex");
  checkStoreIntact(Store, MustHold);
  removeTree(Dir);
}

void runStoreMultiWriterCell(CrashPoint Point) {
  std::string Dir = makeTempDir();
  std::string Store = Dir + "/store.tstore";

  ChildExit Seed = runSave(Store, "gzip");
  if (!check(Seed.Exited && Seed.ExitCode == 0, "baseline seed save failed"))
    return removeTree(Dir);

  // One doomed writer and three clean ones, all racing on one store.
  std::string Sched = std::string(getCrashPointName(Point)) + "=1";
  const std::vector<std::string> CleanWork = {"vortex", "parser", "twolf"};
  int CrashFd = -1;
  pid_t CrashPid =
      spawnChild({"--save", "mcf", "--store", Store}, Sched, CrashFd);
  std::vector<std::pair<pid_t, int>> Clean;
  for (const std::string &W : CleanWork) {
    int Fd = -1;
    pid_t Pid = spawnChild({"--save", W, "--store", Store}, "", Fd);
    if (check(Pid > 0, "spawn of clean writer failed"))
      Clean.push_back({Pid, Fd});
  }

  if (check(CrashPid > 0, "spawn of crashing writer failed")) {
    ChildExit Crashed = waitChild(CrashPid, CrashFd);
    check(Crashed.Exited, "crashing writer hung");
    check(Crashed.ExitCode == CrashInjector::ExitCode,
          "crashing writer exited " + std::to_string(Crashed.ExitCode));
  }
  // Every clean writer must finish despite the corpse's lock: survivors
  // make progress within one takeover each.
  for (auto &[Pid, Fd] : Clean) {
    ChildExit R = waitChild(Pid, Fd);
    check(R.Exited && R.ExitCode == 0,
          "clean writer blocked or failed behind the crashed writer");
  }

  // Every clean image must be in the merged store and round-trip warm.
  std::vector<std::string> MustHold = {"gzip"};
  MustHold.insert(MustHold.end(), CleanWork.begin(), CleanWork.end());
  checkStoreIntact(Store, MustHold);
  check(!fileExists(Store + ".lock"), "stale lock file left behind");
  removeTree(Dir);
}

//===----------------------------------------------------------------------===//
// Supervisor cells: crash serving hosts mid-request.
//===----------------------------------------------------------------------===//

/// Waits (bounded) for one submitted future — the zero-hung-futures
/// assertion in executable form.
bool getReply(std::future<HostReply> &&F, HostReply &Out,
              unsigned TimeoutMillis = 60'000) {
  if (F.wait_for(std::chrono::milliseconds(TimeoutMillis)) !=
      std::future_status::ready)
    return false;
  Out = F.get();
  return true;
}

/// Builds the warm store the supervised fleet shares.
bool seedWarmStore(const std::string &Store,
                   const std::vector<std::string> &Workloads) {
  for (const std::string &W : Workloads) {
    ChildExit R = runSave(Store, W);
    if (!check(R.Exited && R.ExitCode == 0, "warm-store seed " + W + " failed"))
      return false;
  }
  return true;
}

void runSupervisorSingleCell() {
  std::string Dir = makeTempDir();
  std::string Store = Dir + "/store.tstore";
  if (!seedWarmStore(Store, {"gzip", "mcf"}))
    return removeTree(Dir);

  SupervisorConfig Config;
  Config.HostBinary = HostBinary;
  Config.StorePath = Store;
  Config.Hosts = 1;
  Config.MaxRestarts = 8;
  // Every host generation dies on its own second request.
  Config.HostEnv = {"ILDP_CRASH_SCHEDULE=mid_request=2"};
  HostSupervisor Sup(Config);
  if (!check(Sup.start(), "supervisor failed to start"))
    return removeTree(Dir);

  // Request 1: served, and served WARM — the host opened the shared
  // store, so it does zero translation work.
  HostReply R1;
  check(getReply(Sup.submit("run gzip"), R1), "request 1 hung") &&
      check(R1.ok(), "request 1 not ok: " + R1.Raw) &&
      check(R1.CostUnits == 0,
            "request 1 not warm: cost=" + std::to_string(R1.CostUnits));

  // Request 2 kills the host mid-flight: the future MUST still resolve,
  // typed, with a retry hint.
  HostReply R2;
  check(getReply(Sup.submit("run mcf"), R2), "in-flight crash request hung") &&
      check(R2.Status == ExecStatus::HostCrashed,
            "crashed request resolved " +
                std::string(getExecStatusName(R2.Status))) &&
      check(R2.RetryAfterMs > 0, "HostCrashed reply missing RetryAfterMs");

  // The supervisor restarts the slot; wait for it to come back.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Sup.liveHosts() == 0 && std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  check(Sup.liveHosts() == 1, "crashed host was not restarted");
  check(Sup.restarts() >= 1, "restart not counted");

  // First request on the restarted host: warm again (zero translation
  // work re-done after the crash). The restarted generation crashes on
  // its second request too, so retry HostCrashed responses until the
  // fresh host answers.
  bool GotWarm = false;
  for (int Attempt = 0; Attempt != 20 && !GotWarm; ++Attempt) {
    HostReply R;
    if (!check(getReply(Sup.submit("run gzip"), R),
               "post-restart request hung"))
      break;
    if (R.Status == ExecStatus::HostCrashed) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(R.RetryAfterMs ? R.RetryAfterMs : 20));
      continue;
    }
    check(R.ok(), "post-restart request failed: " + R.Raw);
    check(R.CostUnits == 0,
          "restarted host served cold: cost=" + std::to_string(R.CostUnits));
    GotWarm = true;
  }
  check(GotWarm, "never got a served request from the restarted host");

  check(Sup.crashedInFlight() >= 1, "in-flight crash conversion not counted");
  Sup.shutdown();
  removeTree(Dir);
}

void runSupervisorMultiCell() {
  std::string Dir = makeTempDir();
  std::string Store = Dir + "/store.tstore";
  if (!seedWarmStore(Store, {"gzip"}))
    return removeTree(Dir);

  SupervisorConfig Config;
  Config.HostBinary = HostBinary;
  Config.StorePath = Store;
  Config.Hosts = 2;
  Config.MaxRestarts = 32;
  Config.HostEnv = {"ILDP_CRASH_SCHEDULE=mid_request=3"};
  HostSupervisor Sup(Config);
  if (!check(Sup.start(), "supervisor failed to start"))
    return removeTree(Dir);

  // A request stream long enough to kill both hosts several times over.
  // The contract: every single future resolves, every response is typed,
  // and successes keep arriving after each crash (survivor + restart).
  unsigned Served = 0, Crashed = 0;
  constexpr unsigned Total = 40;
  for (unsigned I = 0; I != Total; ++I) {
    HostReply R;
    if (!check(getReply(Sup.submit("run gzip"), R),
               "request " + std::to_string(I) + " hung"))
      break;
    if (R.ok()) {
      ++Served;
      check(R.CostUnits == 0,
            "warm-store request served cold: cost=" +
                std::to_string(R.CostUnits));
    } else {
      check(R.Status == ExecStatus::HostCrashed,
            "unexpected rejection " +
                std::string(getExecStatusName(R.Status)) + ": " + R.Raw);
      ++Crashed;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(R.RetryAfterMs ? R.RetryAfterMs : 20));
    }
  }
  check(Served + Crashed == Total, "some futures never resolved");
  check(Crashed >= 1, "crash schedule never fired");
  check(Served >= Total / 2, "fleet served only " + std::to_string(Served) +
                                 "/" + std::to_string(Total) +
                                 " despite restarts");
  check(Sup.restarts() >= 1, "no host restart observed");

  // The fleet is still alive at the end of the storm.
  HostReply Last;
  bool FinalOk = false;
  for (int Attempt = 0; Attempt != 20 && !FinalOk; ++Attempt) {
    if (!check(getReply(Sup.submit("run gzip"), Last), "final request hung"))
      break;
    if (Last.ok())
      FinalOk = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(
          Last.RetryAfterMs ? Last.RetryAfterMs : 20));
  }
  check(FinalOk, "fleet dead at end of storm");
  Sup.shutdown();
  removeTree(Dir);
}

#endif // !_WIN32

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
#ifdef _WIN32
  (void)argc;
  (void)argv;
  std::fprintf(stderr, "crash testing is POSIX-only\n");
  return 0;
#else
  std::string JsonPath = "CRASHTEST_results.json";
  std::string PointFilter;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--json" && Next())
      JsonPath = argv[I];
    else if (Arg == "--host" && Next())
      HostBinary = argv[I];
    else if (Arg == "--points" && Next())
      PointFilter = std::string(",") + argv[I] + ",";
    else if (Arg == "--keep-dirs")
      KeepDirs = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--host <binary>] "
                   "[--points <p1,p2,...>] [--keep-dirs]\n",
                   argv[0]);
      return 2;
    }
  }

  if (::access(HostBinary.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "host binary %s not executable\n",
                 HostBinary.c_str());
    return 2;
  }

  auto WantPoint = [&PointFilter](const char *Name) {
    return PointFilter.empty() ||
           PointFilter.find(std::string(",") + Name + ",") !=
               std::string::npos;
  };

  std::vector<CellResult> Results;
  auto RunCell = [&Results](const char *Point, const char *Schedule,
                            auto &&Fn) {
    Results.push_back({Point, Schedule, true, ""});
    Cell = &Results.back();
    std::fprintf(stderr, "=== cell %s x %s\n", Point, Schedule);
    Fn();
    std::fprintf(stderr, "=== cell %s x %s: %s\n", Point, Schedule,
                 Cell->Passed ? "PASS" : "FAIL");
    Cell = nullptr;
  };

  const CrashPoint StorePoints[] = {
      CrashPoint::MidTmpWrite, CrashPoint::PostTmpPreRename,
      CrashPoint::MidMergeRead, CrashPoint::PostRenamePreUnlock};
  for (CrashPoint P : StorePoints) {
    const char *Name = getCrashPointName(P);
    if (!WantPoint(Name))
      continue;
    RunCell(Name, "single-writer", [P] { runStoreSingleWriterCell(P); });
    RunCell(Name, "multi-writer", [P] { runStoreMultiWriterCell(P); });
  }
  if (WantPoint(getCrashPointName(CrashPoint::MidRequest))) {
    RunCell("mid_request", "single-host", [] { runSupervisorSingleCell(); });
    RunCell("mid_request", "multi-host", [] { runSupervisorMultiCell(); });
  }

  unsigned Failed = 0;
  FILE *Json = std::fopen(JsonPath.c_str(), "w");
  if (Json)
    std::fprintf(Json, "{\n  \"cells\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    if (!R.Passed)
      ++Failed;
    if (Json)
      std::fprintf(Json,
                   "    {\"point\": \"%s\", \"schedule\": \"%s\", "
                   "\"passed\": %s, \"detail\": \"%s\"}%s\n",
                   R.Point.c_str(), R.Schedule.c_str(),
                   R.Passed ? "true" : "false",
                   jsonEscape(R.Detail).c_str(),
                   I + 1 == Results.size() ? "" : ",");
  }
  if (Json) {
    std::fprintf(Json,
                 "  ],\n  \"total\": %zu,\n  \"failed\": %u\n}\n",
                 Results.size(), Failed);
    std::fclose(Json);
  }

  std::fprintf(stderr, "%zu cells, %u failed%s%s\n", Results.size(), Failed,
               Json ? ", results in " : "", Json ? JsonPath.c_str() : "");
  return int(Failed);
#endif
}
