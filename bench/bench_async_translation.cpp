//===- bench/bench_async_translation.cpp - Background translation bench ---===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what asynchronous background translation takes off the
/// dispatch path. Section 4.2 prices cold translation at ~1,125 translator
/// instructions per translated source instruction, all of it paid inline
/// on the VM thread in the paper's system. With a worker pool, only the
/// decode share (recording happens on the VM thread) remains inline; the
/// rest of the pipeline — lowering, usage analysis, strand formation, code
/// generation, cache copy, chain resolution — runs in the background.
///
/// For every workload this bench runs the VM cold, synchronous vs
/// asynchronous (4 workers), and reports:
///
///   - dispatch-path stall units: all of dbt.cost.total when synchronous,
///     async.inline_units when asynchronous (must be >= 90% moved off),
///   - guest instructions retired while at least one translation was
///     outstanding (the interpreter making progress under translation),
///   - demand waits (dispatch needed a fragment still in flight),
///   - checksum and fragment-count equality (async determinism).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  uint64_t StallUnits = 0;  ///< Translator units paid on the dispatch path.
  uint64_t TotalUnits = 0;  ///< All translator units (both threads).
  uint64_t InstsDuringXlate = 0;
  uint64_t DemandWaits = 0;
  uint64_t Fragments = 0;
  uint64_t Checksum = 0;
  double WallMs = 0;
};

Sample runOnce(const std::string &Workload, unsigned Workers) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.AsyncTranslate = Workers > 0;
  Config.TranslateWorkers = Workers;

  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }

  Sample S;
  const StatisticSet &Stats = Vm.stats();
  S.TotalUnits = Stats.get("dbt.cost.total");
  S.StallUnits =
      Workers > 0 ? Stats.get("async.inline_units") : S.TotalUnits;
  S.InstsDuringXlate = Stats.get("async.insts_during_xlate");
  S.DemandWaits = Stats.get("async.demand_waits");
  S.Fragments = Stats.get("tcache.fragments");
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  return S;
}

} // namespace

int main() {
  printBanner("Asynchronous background translation",
              "translation tax of Section 4.2 moved off the dispatch path");

  TablePrinter T({"workload", "frags", "stall sync", "stall async",
                  "off-path %", "insts@xlate", "waits", "ms sync",
                  "ms async"});
  uint64_t SumSync = 0, SumAsync = 0;
  bool AllConsistent = true;
  bool AllOffloaded = true;

  for (const std::string &W : workloads::workloadNames()) {
    Sample Sync = runOnce(W, 0);
    Sample Async = runOnce(W, 4);

    bool Consistent = Async.Checksum == Sync.Checksum &&
                      Async.Fragments == Sync.Fragments &&
                      Async.TotalUnits == Sync.TotalUnits;
    AllConsistent &= Consistent;
    // >= 90% of the translation work must leave the dispatch path.
    double OffPct =
        Sync.StallUnits
            ? 100.0 * double(Sync.StallUnits - Async.StallUnits) /
                  double(Sync.StallUnits)
            : 0.0;
    AllOffloaded &= OffPct >= 90.0;
    SumSync += Sync.StallUnits;
    SumAsync += Async.StallUnits;

    T.beginRow();
    T.cell(Consistent ? W : W + " (MISMATCH!)");
    T.cellInt(int64_t(Sync.Fragments));
    T.cellInt(int64_t(Sync.StallUnits));
    T.cellInt(int64_t(Async.StallUnits));
    T.cellFloat(OffPct, 1);
    T.cellInt(int64_t(Async.InstsDuringXlate));
    T.cellInt(int64_t(Async.DemandWaits));
    T.cellFloat(Sync.WallMs, 1);
    T.cellFloat(Async.WallMs, 1);
  }
  T.print();

  std::printf("\ndispatch-path stall units: sync %llu, async %llu "
              "(%.1f%% moved off the dispatch path)\n",
              (unsigned long long)SumSync, (unsigned long long)SumAsync,
              SumSync ? 100.0 * double(SumSync - SumAsync) / double(SumSync)
                      : 0.0);
  if (!AllConsistent || !AllOffloaded) {
    std::printf("ASYNC-TRANSLATION CHECK FAILED%s%s\n",
                AllConsistent ? "" : " (sync/async divergence)",
                AllOffloaded ? "" : " (offload below 90%)");
    return 1;
  }
  std::printf("async-translation check OK: identical results, >=90%% of "
              "translation work off the dispatch path on every workload\n");
  return 0;
}
