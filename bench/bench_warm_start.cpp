//===- bench/bench_warm_start.cpp - Persistent-cache warm-start bench -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the persistent translation cache saves. Section 4.2 puts
/// the translation tax at ~1,125 translator instructions per translated
/// source instruction, paid again on every process start because nothing
/// survives exit. All twelve workloads share ONE multi-image cache store:
/// the cold pass runs each workload from scratch and saves its image slot
/// into the store; the warm pass re-runs every workload from that single
/// artifact and reports, per workload and in aggregate:
///
///   - translator work units spent (dbt.cost.total) cold vs warm — the
///     warm column must be exactly 0,
///   - instructions interpreted before reaching translated code,
///   - functional wall-clock per run,
///   - the fragment count, confirming the warm run re-materialized the
///     cold run's cache.
///
/// For CI's two-job artifact flow the two passes can also run separately:
///
///   bench_warm_start save <store>   build the store (cold pass only)
///   bench_warm_start warm <store>   warm-start from an existing store
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  uint64_t TransUnits = 0;
  uint64_t InterpInsts = 0;
  uint64_t Fragments = 0;
  uint64_t StoreHit = 0;
  uint64_t Checksum = 0;
  double WallMs = 0;
};

Sample runOnce(const std::string &Workload, const std::string &StorePath,
               bool Save) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.PersistPath = StorePath;
  Config.PersistSave = Save;

  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }

  Sample S;
  const StatisticSet &Stats = Vm.stats();
  S.TransUnits = Stats.get("dbt.cost.total");
  S.InterpInsts = Stats.get("interp.insts");
  S.Fragments = Stats.get("tcache.fragments");
  S.StoreHit = Stats.get("persist.store_hit");
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  return S;
}

/// Cold pass: every workload translated from scratch, all images saved
/// into one store. Returns the per-workload samples.
std::vector<Sample> coldPass(const std::string &StorePath) {
  std::vector<Sample> Out;
  for (const std::string &W : workloads::workloadNames())
    Out.push_back(runOnce(W, StorePath, /*Save=*/true));
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  // "save <store>" / "warm <store>" split the bench for CI's artifact
  // handoff: one job builds the store, another warm-starts from it.
  if (argc == 3 && std::strcmp(argv[1], "save") == 0) {
    std::string StorePath = argv[2];
    std::remove(StorePath.c_str());
    uint64_t Units = 0, Frags = 0;
    for (const Sample &S : coldPass(StorePath)) {
      Units += S.TransUnits;
      Frags += S.Fragments;
    }
    std::printf("saved %zu workload images (%llu fragments, %llu translator "
                "work units) into %s\n",
                workloads::workloadNames().size(), (unsigned long long)Frags,
                (unsigned long long)Units, StorePath.c_str());
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "warm") == 0) {
    std::string StorePath = argv[2];
    uint64_t Avoided = 0;
    bool Ok = true;
    for (const std::string &W : workloads::workloadNames()) {
      Sample S = runOnce(W, StorePath, /*Save=*/false);
      if (S.StoreHit != 1 || S.TransUnits != 0) {
        std::fprintf(stderr,
                     "%s: NOT warm (store hit %llu, %llu work units)\n",
                     W.c_str(), (unsigned long long)S.StoreHit,
                     (unsigned long long)S.TransUnits);
        Ok = false;
      }
      // Work a cold start of this image would have spent (the store slot
      // records it; re-measuring here would mean running cold again, so
      // count what the warm run imported instead: its resident fragments
      // all arrived for free).
      Avoided += S.Fragments;
    }
    if (!Ok)
      return 1;
    std::printf("all %zu workloads warm-started from %s with zero "
                "translation work (%llu fragments imported for free)\n",
                workloads::workloadNames().size(), StorePath.c_str(),
                (unsigned long long)Avoided);
    return 0;
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [save <store> | warm <store>]\n", argv[0]);
    return 2;
  }

  printBanner("Warm start: one shared multi-image cache store",
              "persistence extension; translation tax of Section 4.2");

  std::string StorePath = "bench_warm_start.tstore";
  std::remove(StorePath.c_str());

  TablePrinter T({"workload", "frags", "xlate cold", "xlate warm",
                  "interp cold", "interp warm", "ms cold", "ms warm"});
  uint64_t SumCold = 0, SumWarm = 0;
  double SumColdMs = 0, SumWarmMs = 0;
  bool AllConsistent = true;

  std::vector<Sample> Cold = coldPass(StorePath);
  const std::vector<std::string> &Names = workloads::workloadNames();
  for (size_t I = 0; I != Names.size(); ++I) {
    // Every warm run reads the same store the whole cold pass built.
    Sample Warm = runOnce(Names[I], StorePath, /*Save=*/false);

    bool Consistent = Warm.Checksum == Cold[I].Checksum &&
                      Warm.Fragments == Cold[I].Fragments &&
                      Warm.StoreHit == 1;
    AllConsistent &= Consistent;
    SumCold += Cold[I].TransUnits;
    SumWarm += Warm.TransUnits;
    SumColdMs += Cold[I].WallMs;
    SumWarmMs += Warm.WallMs;

    T.beginRow();
    T.cell(Consistent ? Names[I] : Names[I] + " (MISMATCH!)");
    T.cellInt(int64_t(Cold[I].Fragments));
    T.cellInt(int64_t(Cold[I].TransUnits));
    T.cellInt(int64_t(Warm.TransUnits));
    T.cellInt(int64_t(Cold[I].InterpInsts));
    T.cellInt(int64_t(Warm.InterpInsts));
    T.cellFloat(Cold[I].WallMs, 1);
    T.cellFloat(Warm.WallMs, 1);
  }
  T.print();
  std::remove(StorePath.c_str());

  std::printf("\ntranslator work avoided by the shared store: %llu units "
              "(warm spent %llu, %.2f%% of cold)\nfunctional wall clock: "
              "cold %.1f ms, warm %.1f ms\n",
              (unsigned long long)(SumCold - SumWarm),
              (unsigned long long)SumWarm,
              SumCold ? 100.0 * double(SumWarm) / double(SumCold) : 0.0,
              SumColdMs, SumWarmMs);
  if (!AllConsistent || SumWarm != 0) {
    std::printf("WARM-START CHECK FAILED\n");
    return 1;
  }
  std::printf("warm-start check OK: one store, twelve images, zero "
              "translation work on warm runs\n");
  return 0;
}
