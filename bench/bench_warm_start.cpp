//===- bench/bench_warm_start.cpp - Persistent-cache warm-start bench -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the persistent translation cache saves. Section 4.2 puts
/// the translation tax at ~1,125 translator instructions per translated
/// source instruction, paid again on every process start because nothing
/// survives exit. For every workload this bench runs the VM cold (empty
/// cache file slot, fragments translated from scratch, cache saved on
/// exit) and then warm (fragments imported from the file), and reports:
///
///   - translator work units spent (dbt.cost.total) cold vs warm — the
///     warm column must be ~0,
///   - instructions interpreted before reaching translated code,
///   - functional wall-clock per run,
///   - the fragment count, confirming the warm run re-materialized the
///     cold run's cache.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  uint64_t TransUnits = 0;
  uint64_t InterpInsts = 0;
  uint64_t Fragments = 0;
  uint64_t Checksum = 0;
  double WallMs = 0;
};

Sample runOnce(const std::string &Workload, const std::string &CachePath) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.PersistPath = CachePath;

  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }

  Sample S;
  const StatisticSet &Stats = Vm.stats();
  S.TransUnits = Stats.get("dbt.cost.total");
  S.InterpInsts = Stats.get("interp.insts");
  S.Fragments = Stats.get("tcache.fragments");
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  return S;
}

} // namespace

int main() {
  printBanner("Warm start: persistent translation cache",
              "persistence extension; translation tax of Section 4.2");

  TablePrinter T({"workload", "frags", "xlate cold", "xlate warm",
                  "interp cold", "interp warm", "ms cold", "ms warm"});
  uint64_t SumCold = 0, SumWarm = 0;
  double SumColdMs = 0, SumWarmMs = 0;
  bool AllConsistent = true;

  for (const std::string &W : workloads::workloadNames()) {
    std::string CachePath = "bench_warm_start." + W + ".tcache";
    std::remove(CachePath.c_str());
    Sample Cold = runOnce(W, CachePath);
    Sample Warm = runOnce(W, CachePath);
    std::remove(CachePath.c_str());

    bool Consistent =
        Warm.Checksum == Cold.Checksum && Warm.Fragments == Cold.Fragments;
    AllConsistent &= Consistent;
    SumCold += Cold.TransUnits;
    SumWarm += Warm.TransUnits;
    SumColdMs += Cold.WallMs;
    SumWarmMs += Warm.WallMs;

    T.beginRow();
    T.cell(Consistent ? W : W + " (MISMATCH!)");
    T.cellInt(int64_t(Cold.Fragments));
    T.cellInt(int64_t(Cold.TransUnits));
    T.cellInt(int64_t(Warm.TransUnits));
    T.cellInt(int64_t(Cold.InterpInsts));
    T.cellInt(int64_t(Warm.InterpInsts));
    T.cellFloat(Cold.WallMs, 1);
    T.cellFloat(Warm.WallMs, 1);
  }
  T.print();

  std::printf("\ntranslator work units: cold %llu, warm %llu (%.2f%% of "
              "cold)\nfunctional wall clock: cold %.1f ms, warm %.1f ms\n",
              (unsigned long long)SumCold, (unsigned long long)SumWarm,
              SumCold ? 100.0 * double(SumWarm) / double(SumCold) : 0.0,
              SumColdMs, SumWarmMs);
  if (!AllConsistent || SumWarm != 0) {
    std::printf("WARM-START CHECK FAILED\n");
    return 1;
  }
  std::printf("warm-start check OK: zero translation work on warm runs\n");
  return 0;
}
