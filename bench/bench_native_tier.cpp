//===- bench/bench_native_tier.cpp - Three-tier execution comparison ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock and guest-MIPS for the three execution tiers on all twelve
/// workloads: pure interpretation, the I-ISA fragment executor, and the
/// native-host tier (hot fragments compiled to real machine code through
/// emit-C + dlopen). Each VM tier is measured cold (translate/compile
/// during the run) and warm (fragments and native objects imported from a
/// persistent store; the warm native pass first converges the store until
/// a run performs ZERO host compilations).
///
/// Emits BENCH_native_tier.json next to the binary with every sample and
/// checks the headline claim where a host toolchain exists: warm native
/// execution reaches at least 2x the guest-MIPS of the warm I-ISA tier on
/// at least 8 of the 12 workloads. Without a toolchain the native columns
/// are reported as unavailable and the check is skipped.
///
/// Runs at a minimum workload scale of 4 (ILDP_BENCH_SCALE can raise it
/// further): warm-start fixed costs — opening the store, dlopen'ing the
/// module set — amortize only over a long enough run, and steady-state
/// guest-MIPS is the quantity the tier comparison is about.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "native/NativeCompiler.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  double WallMs = 0;
  uint64_t GuestInsts = 0;
  uint64_t Checksum = 0;
  double mips() const {
    return WallMs > 0 ? double(GuestInsts) / (WallMs * 1e3) : 0;
  }
};

/// Minimum scale 4 (see file comment); ILDP_BENCH_SCALE raises it.
unsigned tierScale() { return benchScale() < 4 ? 4 : benchScale(); }

Sample interpRun(const std::string &Workload) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, tierScale());
  auto Start = std::chrono::steady_clock::now();
  Interpreter Interp(Mem);
  Interp.state().Pc = Image.EntryPc;
  StepInfo Last = Interp.run(2'000'000'000ull);
  auto End = std::chrono::steady_clock::now();
  if (Last.Status != StepStatus::Halted) {
    std::fprintf(stderr, "%s: interpreter did not halt\n", Workload.c_str());
    std::exit(1);
  }
  Sample S;
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  S.GuestInsts = Interp.retiredCount();
  S.Checksum = Interp.state().readGpr(alpha::RegV0);
  return S;
}

/// One VM run; wall clock covers construction (warm-start import is part
/// of what a tier costs) through halt. Save/store knobs via \p Config.
Sample vmRun(const std::string &Workload, vm::VmConfig Config,
             StatisticSet *StatsOut = nullptr) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, tierScale());
  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }
  Sample S;
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  S.GuestInsts = Vm.stats().get("vm.guest_insts");
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  if (StatsOut)
    *StatsOut = Vm.stats();
  return S;
}

vm::VmConfig nativeConfig() {
  vm::VmConfig Config;
  Config.NativeTier = true;
  Config.NativeThreshold = 16;
  return Config;
}

/// Converges one workload's native store: save-runs until a run performs
/// zero host compilations (the save path waits out in-flight compiles, so
/// each round persists everything its run qualified). Exits the process
/// if six rounds aren't enough — that would be a product bug.
void convergeNativeStore(const std::string &Workload,
                         const std::string &StorePath) {
  for (int Round = 0; Round != 6; ++Round) {
    vm::VmConfig Config = nativeConfig();
    Config.PersistPath = StorePath;
    StatisticSet Stats;
    vmRun(Workload, Config, &Stats);
    if (Stats.get("native.compiles") == 0)
      return;
  }
  std::fprintf(stderr, "%s: native store never converged\n", Workload.c_str());
  std::exit(1);
}

struct Row {
  std::string Workload;
  Sample Interp, IisaCold, IisaWarm, NatCold, NatWarm;
  uint64_t WarmCompiles = 0; ///< Must be 0: the acceptance criterion.
  uint64_t WarmNativeRuns = 0;
};

void writeJson(const std::vector<Row> &Rows, bool Toolchain,
               unsigned SpeedupCount) {
  std::FILE *Out = std::fopen("BENCH_native_tier.json", "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write BENCH_native_tier.json\n");
    std::exit(1);
  }
  auto Tier = [&](const char *Name, const char *Phase, const Sample &S,
                  bool Last) {
    std::fprintf(Out,
                 "      {\"tier\": \"%s\", \"phase\": \"%s\", "
                 "\"wall_ms\": %.3f, \"guest_insts\": %llu, "
                 "\"mips\": %.2f}%s\n",
                 Name, Phase, S.WallMs, (unsigned long long)S.GuestInsts,
                 S.mips(), Last ? "" : ",");
  };
  std::fprintf(Out, "{\n  \"bench\": \"native_tier\",\n"
                    "  \"toolchain\": %s,\n  \"scale\": %u,\n"
                    "  \"workloads\": [\n",
               Toolchain ? "true" : "false", tierScale());
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(Out, "    {\"workload\": \"%s\", \"samples\": [\n",
                 R.Workload.c_str());
    Tier("interp", "cold", R.Interp, false);
    Tier("iisa", "cold", R.IisaCold, false);
    Tier("iisa", "warm", R.IisaWarm, !Toolchain);
    if (Toolchain) {
      Tier("native", "cold", R.NatCold, false);
      Tier("native", "warm", R.NatWarm, true);
    }
    std::fprintf(Out, "    ], \"warm_native_compiles\": %llu}%s\n",
                 (unsigned long long)R.WarmCompiles,
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n  \"native_ge2x_iisa_warm\": %u\n}\n",
               SpeedupCount);
  std::fclose(Out);
}

} // namespace

int main() {
  printBanner("Native-host execution tier: interp vs I-ISA vs native",
              "emit-C + dlopen extension; guest-MIPS per tier");

  const bool Toolchain = native::hostCompiler().found();
  if (!Toolchain)
    std::printf("no host C compiler found: native columns unavailable, "
                "speedup check skipped\n\n");

  std::string IisaStore = "bench_native_tier.iisa.tstore";
  std::string NativeStore = "bench_native_tier.native.tstore";

  TablePrinter T({"workload", "interp", "iisa cold", "iisa warm",
                  "native cold", "native warm", "speedup", "warm compiles"});
  std::vector<Row> Rows;
  unsigned SpeedupCount = 0;
  bool Consistent = true;

  for (const std::string &W : workloads::workloadNames()) {
    Row R;
    R.Workload = W;
    R.Interp = interpRun(W);

    std::remove(IisaStore.c_str());
    vm::VmConfig Iisa;
    Iisa.PersistPath = IisaStore;
    R.IisaCold = vmRun(W, Iisa);
    Iisa.PersistSave = false;
    R.IisaWarm = vmRun(W, Iisa);
    std::remove(IisaStore.c_str());

    double Speedup = 0;
    if (Toolchain) {
      std::remove(NativeStore.c_str());
      vm::VmConfig Nat = nativeConfig();
      Nat.PersistPath = NativeStore;
      R.NatCold = vmRun(W, Nat);
      convergeNativeStore(W, NativeStore);
      Nat.PersistSave = false;
      StatisticSet WarmStats;
      R.NatWarm = vmRun(W, Nat, &WarmStats);
      R.WarmCompiles = WarmStats.get("native.compiles");
      R.WarmNativeRuns = WarmStats.get("native.runs");
      std::remove(NativeStore.c_str());

      Speedup = R.IisaWarm.mips() > 0 ? R.NatWarm.mips() / R.IisaWarm.mips()
                                      : 0;
      if (Speedup >= 2.0)
        ++SpeedupCount;
      Consistent &= R.NatCold.Checksum == R.Interp.Checksum &&
                    R.NatWarm.Checksum == R.Interp.Checksum &&
                    R.WarmCompiles == 0 && R.WarmNativeRuns > 0;
    }
    Consistent &= R.IisaCold.Checksum == R.Interp.Checksum &&
                  R.IisaWarm.Checksum == R.Interp.Checksum;

    T.beginRow();
    T.cell(W);
    T.cellFloat(R.Interp.mips(), 2);
    T.cellFloat(R.IisaCold.mips(), 2);
    T.cellFloat(R.IisaWarm.mips(), 2);
    if (Toolchain) {
      T.cellFloat(R.NatCold.mips(), 2);
      T.cellFloat(R.NatWarm.mips(), 2);
      T.cellFloat(Speedup, 2);
      T.cellInt(int64_t(R.WarmCompiles));
    } else {
      T.cell("-");
      T.cell("-");
      T.cell("-");
      T.cell("-");
    }
    Rows.push_back(R);
  }
  T.print();

  writeJson(Rows, Toolchain, SpeedupCount);
  std::printf("\nsamples written to BENCH_native_tier.json\n");

  if (!Consistent) {
    std::printf("NATIVE-TIER CHECK FAILED: checksum mismatch, warm "
                "compilations, or no native execution on a warm run\n");
    return 1;
  }
  if (Toolchain) {
    std::printf("warm native >= 2x warm I-ISA guest-MIPS on %u/%zu "
                "workloads\n",
                SpeedupCount, Rows.size());
    if (SpeedupCount < 8) {
      std::printf("NATIVE-TIER SPEEDUP CHECK FAILED (need >= 8)\n");
      return 1;
    }
    std::printf("native-tier check OK: zero warm compilations, bit-exact "
                "checksums, speedup criterion met\n");
  } else {
    std::printf("native-tier check SKIPPED (no toolchain); I-ISA and "
                "interp columns verified bit-exact\n");
  }
  return 0;
}
