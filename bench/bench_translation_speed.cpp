//===- bench/bench_translation_speed.cpp - Translator microbenchmarks -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark wall-clock microbenchmarks for the components whose
/// cost the paper discusses: translation itself (Section 4.2's overhead),
/// interpretation, and functional execution of translated code. These
/// complement the architectural cost accounting in
/// bench_table2_translation_stats.
///
/// The native-tier additions keep the two very different "translation"
/// costs separate: BM_Translate* is the in-process I-ISA lowering (paid
/// on every cold fragment), while BM_NativeEmitC / BM_NativeHostCompile
/// are the native tier's C emission and out-of-line host compilation —
/// orders of magnitude slower, paid off the critical path by the compile
/// workers and only until the object lands in the persistent store.
/// BM_ExecuteFragmentNative mirrors BM_ExecuteFragment on the compiled
/// code; the host-compile benchmarks skip where no toolchain exists.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "iisa/Executor.h"
#include "interp/Interpreter.h"
#include "native/NativeCompiler.h"
#include "native/NativeEmitter.h"
#include "native/NativeExec.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ildp;
using Op = alpha::Opcode;

namespace {

/// Records the gzip hot loop's superblock once (shared fixture).
struct GzipFixture {
  GuestMemory Mem;
  dbt::Superblock Sb;
  uint64_t Entry = 0;

  GzipFixture() {
    workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
    Entry = Img.EntryPc;
    Interpreter Interp(Mem);
    Interp.state().Pc = Entry;
    // Find the first backward-taken branch target and record from there.
    uint64_t Hot = 0;
    for (int I = 0; I != 100000 && !Hot; ++I) {
      StepInfo Info = Interp.step();
      if (Info.IsControl && alpha::isCondBranch(Info.Inst.Op) && Info.Taken &&
          Info.NextPc <= Info.Pc)
        Hot = Info.NextPc;
    }
    while (Interp.state().Pc != Hot)
      Interp.step();
    dbt::SuperblockBuilder Builder(Hot, 200);
    while (Builder.append(Interp.step()) !=
           dbt::SuperblockBuilder::Status::Done) {
    }
    Sb = Builder.take();
  }
};

GzipFixture &gzipFixture() {
  static GzipFixture Fixture;
  return Fixture;
}

void BM_TranslateBasic(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Basic;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
  State.counters["src_insts"] = double(F.Sb.Insts.size());
}

void BM_TranslateModified(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
}

void BM_TranslateStraight(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Straight;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
}

void BM_Interpret(benchmark::State &State) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
  for (auto _ : State) {
    Interpreter Interp(Mem);
    Interp.state().Pc = Img.EntryPc;
    Interp.run(20000);
    benchmark::DoNotOptimize(Interp.state().Gpr.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 20000);
}

void BM_ExecuteFragment(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  dbt::TranslationResult R =
      dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
  iisa::IExecState Exec;
  // Seed plausible state: loop registers that keep the loop bounded.
  Exec.writeGpr(16, 0x20000000);
  Exec.writeGpr(17, 1);
  Exec.writeGpr(0, 0x28000000);
  GuestMemory Mem;
  Mem.mapRegion(0x20000000, 0x10000);
  Mem.mapRegion(0x28000000, 0x10000);
  for (auto _ : State) {
    Exec.writeGpr(17, 1); // single iteration, exits at the cond branch
    iisa::IExit Exit = iisa::execute(R.Frag.Body.data(), R.Frag.Body.size(),
                                     Exec, Mem, nullptr);
    benchmark::DoNotOptimize(Exit.VTarget);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(R.Frag.Body.size()));
}

void BM_NativeEmitC(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  dbt::TranslationResult R =
      dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
  for (auto _ : State) {
    native::EmitResult E =
        native::emitFragmentC(R.Frag.Body, R.Frag.Variant);
    benchmark::DoNotOptimize(E.Source.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
}

void BM_NativeHostCompile(benchmark::State &State) {
  const native::HostCompiler &CC = native::hostCompiler();
  if (!CC.found()) {
    State.SkipWithError("no host C compiler");
    return;
  }
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  dbt::TranslationResult R =
      dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
  native::EmitResult E = native::emitFragmentC(R.Frag.Body, R.Frag.Variant);
  for (auto _ : State) {
    native::CompileResult C = native::compileToObject(CC, E.Source);
    if (!C.Ok) {
      State.SkipWithError("host compile failed");
      return;
    }
    benchmark::DoNotOptimize(C.Object.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
  State.counters["src_insts"] = double(F.Sb.Insts.size());
}

void BM_ExecuteFragmentNative(benchmark::State &State) {
  const native::HostCompiler &CC = native::hostCompiler();
  if (!CC.found()) {
    State.SkipWithError("no host C compiler");
    return;
  }
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  dbt::TranslationResult R =
      dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
  native::EmitResult E = native::emitFragmentC(R.Frag.Body, R.Frag.Variant);
  native::CompileResult C = native::compileToObject(CC, E.Source);
  if (!C.Ok) {
    State.SkipWithError("host compile failed");
    return;
  }
  native::NativeCode Code;
  Code.Module = native::loadModule(C.Object);
  if (!Code.Module) {
    State.SkipWithError("dlopen failed");
    return;
  }
  Code.Fn = Code.Module->entry();
  Code.Meta = native::buildMeta(R.Frag.Body);
  iisa::IExecState Exec;
  Exec.writeGpr(16, 0x20000000);
  Exec.writeGpr(17, 1);
  Exec.writeGpr(0, 0x28000000);
  GuestMemory Mem;
  Mem.mapRegion(0x20000000, 0x10000);
  Mem.mapRegion(0x28000000, 0x10000);
  for (auto _ : State) {
    Exec.writeGpr(17, 1); // single iteration, exits at the cond branch
    iisa::IExit Exit = native::runFragment(Code, Exec, Mem, R.Frag.Body);
    benchmark::DoNotOptimize(Exit.VTarget);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(R.Frag.Body.size()));
}

BENCHMARK(BM_TranslateBasic);
BENCHMARK(BM_TranslateModified);
BENCHMARK(BM_TranslateStraight);
BENCHMARK(BM_NativeEmitC);
BENCHMARK(BM_NativeHostCompile);
BENCHMARK(BM_Interpret);
BENCHMARK(BM_ExecuteFragment);
BENCHMARK(BM_ExecuteFragmentNative);

} // namespace

BENCHMARK_MAIN();
