//===- bench/bench_translation_speed.cpp - Translator microbenchmarks -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark wall-clock microbenchmarks for the components whose
/// cost the paper discusses: translation itself (Section 4.2's overhead),
/// interpretation, and functional execution of translated code. These
/// complement the architectural cost accounting in
/// bench_table2_translation_stats.
///
//===----------------------------------------------------------------------===//

#include "alpha/Assembler.h"
#include "core/SuperblockBuilder.h"
#include "core/Translator.h"
#include "iisa/Executor.h"
#include "interp/Interpreter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ildp;
using Op = alpha::Opcode;

namespace {

/// Records the gzip hot loop's superblock once (shared fixture).
struct GzipFixture {
  GuestMemory Mem;
  dbt::Superblock Sb;
  uint64_t Entry = 0;

  GzipFixture() {
    workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
    Entry = Img.EntryPc;
    Interpreter Interp(Mem);
    Interp.state().Pc = Entry;
    // Find the first backward-taken branch target and record from there.
    uint64_t Hot = 0;
    for (int I = 0; I != 100000 && !Hot; ++I) {
      StepInfo Info = Interp.step();
      if (Info.IsControl && alpha::isCondBranch(Info.Inst.Op) && Info.Taken &&
          Info.NextPc <= Info.Pc)
        Hot = Info.NextPc;
    }
    while (Interp.state().Pc != Hot)
      Interp.step();
    dbt::SuperblockBuilder Builder(Hot, 200);
    while (Builder.append(Interp.step()) !=
           dbt::SuperblockBuilder::Status::Done) {
    }
    Sb = Builder.take();
  }
};

GzipFixture &gzipFixture() {
  static GzipFixture Fixture;
  return Fixture;
}

void BM_TranslateBasic(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Basic;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
  State.counters["src_insts"] = double(F.Sb.Insts.size());
}

void BM_TranslateModified(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
}

void BM_TranslateStraight(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Straight;
  for (auto _ : State) {
    dbt::TranslationResult R =
        dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
    benchmark::DoNotOptimize(R.Frag.Body.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * F.Sb.Insts.size());
}

void BM_Interpret(benchmark::State &State) {
  GuestMemory Mem;
  workloads::WorkloadImage Img = workloads::buildWorkload("gzip", Mem, 1);
  for (auto _ : State) {
    Interpreter Interp(Mem);
    Interp.state().Pc = Img.EntryPc;
    Interp.run(20000);
    benchmark::DoNotOptimize(Interp.state().Gpr.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 20000);
}

void BM_ExecuteFragment(benchmark::State &State) {
  GzipFixture &F = gzipFixture();
  dbt::DbtConfig Config;
  Config.Variant = iisa::IsaVariant::Modified;
  dbt::TranslationResult R =
      dbt::translate(F.Sb, Config, dbt::ChainEnv()).take();
  iisa::IExecState Exec;
  // Seed plausible state: loop registers that keep the loop bounded.
  Exec.writeGpr(16, 0x20000000);
  Exec.writeGpr(17, 1);
  Exec.writeGpr(0, 0x28000000);
  GuestMemory Mem;
  Mem.mapRegion(0x20000000, 0x10000);
  Mem.mapRegion(0x28000000, 0x10000);
  for (auto _ : State) {
    Exec.writeGpr(17, 1); // single iteration, exits at the cond branch
    iisa::IExit Exit = iisa::execute(R.Frag.Body.data(), R.Frag.Body.size(),
                                     Exec, Mem, nullptr);
    benchmark::DoNotOptimize(Exit.VTarget);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(R.Frag.Body.size()));
}

BENCHMARK(BM_TranslateBasic);
BENCHMARK(BM_TranslateModified);
BENCHMARK(BM_TranslateStraight);
BENCHMARK(BM_Interpret);
BENCHMARK(BM_ExecuteFragment);

} // namespace

BENCHMARK_MAIN();
