//===- bench/bench_fig5_instruction_expansion.cpp - Figure 5 --------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: relative dynamic instruction count of straightened code
/// (including all chaining, stub, and dispatch instructions) over the
/// original program, per chaining policy. Straightening itself *removes*
/// instructions (unconditional branches, NOPs); indirect-jump chaining
/// adds them back — dramatically so under no_pred.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Figure 5: relative instruction count after chaining",
              "Figure 5 (Section 4.3)");
  TablePrinter T({"workload", "no_pred", "sw_pred.no_ras", "sw_pred.ras"});
  double Sum[3] = {0, 0, 0};
  unsigned N = 0;

  for (const std::string &W : workloads::workloadNames()) {
    T.beginRow();
    T.cell(W);
    unsigned Idx = 0;
    for (dbt::ChainPolicy Policy :
         {dbt::ChainPolicy::NoPred, dbt::ChainPolicy::SwPredNoRas,
          dbt::ChainPolicy::SwPredRas}) {
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Straight;
      Dbt.Chaining = Policy;
      RunOutput Out = runFunctional(W, Dbt);
      const StatisticSet &S = Out.Vm;
      uint64_t Executed = S.get("frag.insts") + S.get("dispatch.insts") +
                          S.get("stub.insts");
      uint64_t VInsts = S.get("vm.vinsts_translated");
      double Rel = VInsts ? double(Executed) / double(VInsts) : 0;
      T.cellFloat(Rel, 2);
      Sum[Idx++] += Rel;
    }
    ++N;
  }
  T.beginRow();
  T.cell("average");
  for (unsigned I = 0; I != 3; ++I)
    T.cellFloat(Sum[I] / N, 2);
  T.print();
  std::printf("\npaper shape: indirect-jump-heavy benchmarks (perlbmk, gap, "
              "eon) expand most;\nloop benchmarks stay near (or below) 1.0 "
              "thanks to removed direct branches.\n");
  return 0;
}
