//===- bench/bench_fig7_register_usage.cpp - Figure 7 ---------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: output register value usage ("globalness") of source
/// operations inside superblocks, dynamically weighted by execution. For
/// the modified ISA the classes are the plain Section 3.3 categories; the
/// basic ISA adds the "local -> global" and "no user -> global" promotions
/// (values that must be copied to GPRs for side exits or precise traps).
///
/// Paper shape: modified ISA ~25% globals; basic ISA promotions push the
/// effective global fraction to ~40%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct UsageRow {
  double NoUser = 0, Local = 0, Temp = 0, Global = 0, Spill = 0;
  double LocalToGlobal = 0, NoUserToGlobal = 0;

  double globalTotal() const {
    return Global + Spill + LocalToGlobal + NoUserToGlobal;
  }
};

UsageRow measure(const std::string &Workload, iisa::IsaVariant Variant) {
  dbt::DbtConfig Dbt;
  Dbt.Variant = Variant;
  RunOutput Out = runFunctional(Workload, Dbt);
  const StatisticSet &S = Out.Vm;
  auto Get = [&](const char *Name) {
    return double(S.get(std::string("usage.") + Name));
  };
  // Producers only: drop the "none" class (stores, branches).
  double Producers = Get("no_user") + Get("local") + Get("temp") +
                     Get("liveout_global") + Get("comm_global") +
                     Get("spill_global") + Get("local_to_global") +
                     Get("no_user_to_global");
  UsageRow Row;
  if (Producers == 0)
    return Row;
  Row.NoUser = 100.0 * Get("no_user") / Producers;
  Row.Local = 100.0 * Get("local") / Producers;
  Row.Temp = 100.0 * Get("temp") / Producers;
  Row.Global =
      100.0 * (Get("liveout_global") + Get("comm_global")) / Producers;
  Row.Spill = 100.0 * Get("spill_global") / Producers;
  Row.LocalToGlobal = 100.0 * Get("local_to_global") / Producers;
  Row.NoUserToGlobal = 100.0 * Get("no_user_to_global") / Producers;
  return Row;
}

void printVariant(const char *Title, iisa::IsaVariant Variant) {
  std::printf("\n-- %s --\n", Title);
  TablePrinter T({"workload", "no_user", "local", "temp", "liveout+comm",
                  "spill", "local->glob", "nouser->glob", "global total"});
  UsageRow Sum;
  unsigned N = 0;
  for (const std::string &W : workloads::workloadNames()) {
    UsageRow R = measure(W, Variant);
    T.beginRow();
    T.cell(W);
    T.cellFloat(R.NoUser, 1);
    T.cellFloat(R.Local, 1);
    T.cellFloat(R.Temp, 1);
    T.cellFloat(R.Global, 1);
    T.cellFloat(R.Spill, 1);
    T.cellFloat(R.LocalToGlobal, 1);
    T.cellFloat(R.NoUserToGlobal, 1);
    T.cellFloat(R.globalTotal(), 1);
    Sum.NoUser += R.NoUser;
    Sum.Local += R.Local;
    Sum.Temp += R.Temp;
    Sum.Global += R.Global;
    Sum.Spill += R.Spill;
    Sum.LocalToGlobal += R.LocalToGlobal;
    Sum.NoUserToGlobal += R.NoUserToGlobal;
    ++N;
  }
  T.beginRow();
  T.cell("average");
  T.cellFloat(Sum.NoUser / N, 1);
  T.cellFloat(Sum.Local / N, 1);
  T.cellFloat(Sum.Temp / N, 1);
  T.cellFloat(Sum.Global / N, 1);
  T.cellFloat(Sum.Spill / N, 1);
  T.cellFloat(Sum.LocalToGlobal / N, 1);
  T.cellFloat(Sum.NoUserToGlobal / N, 1);
  T.cellFloat(Sum.globalTotal() / N, 1);
  T.print();
}

} // namespace

int main() {
  printBanner("Figure 7: output register usage (percent of producing "
              "source operations)",
              "Figure 7 (Section 4.4)");
  printVariant("modified ISA", iisa::IsaVariant::Modified);
  printVariant("basic ISA (with exit/trap promotions)",
               iisa::IsaVariant::Basic);
  std::printf("\npaper shape: ~25%% global outputs for the modified ISA; "
              "the basic ISA's\npromotions raise the total global fraction "
              "to ~40%%.\n");
  return 0;
}
