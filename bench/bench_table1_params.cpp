//===- bench/bench_table1_params.cpp - Table 1 reproduction ---------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the simulated machine configurations side by side — the paper's
/// Table 1 (microarchitecture parameters). Values are read back from the
/// live parameter structs so this table cannot drift from the simulators.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

namespace {

std::string cacheDesc(const uarch::CacheParams &C) {
  std::string Out = std::to_string(C.LineBytes) + "B line, ";
  Out += C.Assoc == 1 ? "direct-mapped" : std::to_string(C.Assoc) + "-way";
  Out += ", " + std::to_string(C.SizeBytes / 1024) + "KB, ";
  Out += std::to_string(C.HitLatency) + "-cycle, ";
  Out += C.RandomRepl ? "random" : "LRU";
  return Out;
}

} // namespace

int main() {
  printBanner("Table 1: microarchitecture parameters", "Table 1");
  uarch::SuperscalarParams S;
  uarch::IldpParams I;
  uarch::IldpParams ISmall;
  ISmall.useSmallDCache();

  TablePrinter T({"parameter", "out-of-order superscalar",
                  "ILDP microarchitecture"});
  auto Row = [&](const std::string &Name, const std::string &A,
                 const std::string &B) {
    T.beginRow();
    T.cell(Name);
    T.cell(A);
    T.cell(B);
  };

  Row("branch predictor",
      std::to_string(S.Front.GshareEntries / 1024) + "K-entry g-share, " +
          std::to_string(S.Front.GshareHistBits) + "-bit history",
      "same");
  Row("BTB",
      std::to_string(S.Front.BtbEntries) + "-entry, " +
          std::to_string(S.Front.BtbAssoc) + "-way",
      "same");
  Row("RAS", std::to_string(S.Front.RasEntries) + "-entry",
      "dual-address, " + std::to_string(S.Front.RasEntries) + "-entry");
  Row("fetch redirection",
      std::to_string(S.Front.RedirectLatency) + " cycles", "same");
  Row("I-cache", cacheDesc(S.Front.ICache),
      "same; up to " + std::to_string(S.Front.MaxBlocksPerCycle) +
          " sequential basic blocks");
  Row("D-cache", cacheDesc(S.DCache),
      cacheDesc(I.DCache) + " or " + cacheDesc(ISmall.DCache) +
          "; replicated per PE");
  Row("L2 cache", cacheDesc(S.Memory.L2), "same");
  Row("memory", std::to_string(S.Memory.MemLatency) + "-cycle", "same");
  Row("reorder buffer", std::to_string(S.RobSize) + " Alpha insts",
      std::to_string(I.RobSize) + " ILDP insts");
  Row("decode/retire width", std::to_string(S.Width), std::to_string(I.Width));
  Row("issue window", std::to_string(S.RobSize) + " (== ROB)",
      "4/6/8 FIFO heads");
  Row("issue bandwidth", std::to_string(S.IssueWidth), "4/6/8 (1 per PE)");
  Row("execution resources",
      std::to_string(S.NumFus) + " fully symmetric FUs",
      "4/6/8 PEs, 1 FU each");
  Row("communication latency", "none (idealized)",
      "0 or 2 cycles (global)");
  Row("multiply latency", std::to_string(S.MulLatency) + " cycles", "same");
  T.print();
  return 0;
}
