//===- bench/bench_fig9_machine_parameters.cpp - Figure 9 -----------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 9: IPC variation of the modified-ISA ILDP machine over machine
/// parameters, relative to the baseline (4 accumulators, 32KB replicated
/// D-cache, 8 PEs, 0-cycle communication):
///   - 8 logical accumulators,
///   - 8KB replicated D-cache,
///   - 2-cycle global communication latency,
///   - 6 PEs,
///   - 4 PEs.
///
/// Paper shape: 8 accumulators +11%; quarter-size cache barely matters;
/// 2-cycle communication costs only a few percent (more on our distilled
/// kernels — see EXPERIMENTS.md); 6 PEs -5%; 4 PEs -18%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Variation {
  const char *Name;
  unsigned Accs;
  bool SmallCache;
  unsigned CommLat;
  unsigned Pes;
};

} // namespace

int main() {
  printBanner("Figure 9: IPC variation over machine parameters "
              "(modified ISA on ILDP)",
              "Figure 9 (Section 4.5)");

  const Variation Variations[] = {
      {"baseline(4acc,32K,0cyc,8PE)", 4, false, 0, 8},
      {"8 accumulators", 8, false, 0, 8},
      {"8KB D-cache", 4, true, 0, 8},
      {"2-cycle comm", 4, false, 2, 8},
      {"6 PEs", 4, false, 0, 6},
      {"4 PEs", 4, false, 0, 4},
  };
  constexpr unsigned NumVar = std::size(Variations);

  std::vector<std::string> Headers = {"workload"};
  for (const Variation &V : Variations)
    Headers.push_back(V.Name);
  TablePrinter T(Headers);

  std::vector<double> Col[NumVar];
  for (const std::string &W : workloads::workloadNames()) {
    T.beginRow();
    T.cell(W);
    for (unsigned I = 0; I != NumVar; ++I) {
      const Variation &V = Variations[I];
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Modified;
      Dbt.NumAccumulators = V.Accs;
      uarch::IldpParams Params;
      Params.NumPEs = V.Pes;
      Params.CommLatency = V.CommLat;
      if (V.SmallCache)
        Params.useSmallDCache();
      double Ipc = runOnIldp(W, Dbt, Params).vIpc();
      T.cellFloat(Ipc, 3);
      Col[I].push_back(Ipc);
    }
  }
  T.beginRow();
  T.cell("harmonic mean");
  double Base = harmonicMean(Col[0]);
  for (unsigned I = 0; I != NumVar; ++I)
    T.cellFloat(harmonicMean(Col[I]), 3);
  T.print();

  std::printf("\nrelative to baseline (harmonic mean):\n");
  for (unsigned I = 0; I != NumVar; ++I)
    std::printf("  %-28s %+6.1f%%\n", Variations[I].Name,
                100.0 * (harmonicMean(Col[I]) / Base - 1.0));
  std::printf("\npaper shape: 8 accumulators help (~+11%%); the small "
              "replicated cache barely\nmatters; 2-cycle communication "
              "costs little; 6 PEs ~-5%%, 4 PEs ~-18%%.\n");
  return 0;
}
