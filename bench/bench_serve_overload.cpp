//===- bench/bench_serve_overload.cpp - Overload chaos harness ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the fleet service at 10x its measured capacity — sustained
/// open-loop arrivals with mixed priorities, deadlines on the normal
/// lane, and one hostile tenant hammering far past its admission quota —
/// and checks that overload degrades the way DESIGN.md §14 promises:
///
///  - interactive-lane p99 sojourn stays bounded by its (shallow) lane
///    depth and dequeue weight — no shared-queue cliff where interactive
///    requests rot behind a batch backlog;
///  - every accepted promise is fulfilled (no broken futures, ever);
///  - every rejection is typed (queue-full / tenant-quota / deadline),
///    with RetryAfterMs >= 1 on every tenant-quota rejection;
///  - every completed response is bit-identical to a standalone cold-VM
///    run of the same workload — overload never corrupts results.
///
/// Phase 1 calibrates capacity with a closed burst through the same fleet
/// (which also seeds the admission EWMA that prices deadline sheds), then
/// phase 2 submits the overload schedule pinned to a 10x arrival clock.
///
/// Emits BENCH_serve_overload.json next to the binary. --smoke shrinks
/// the run for sanitizer CI and skips the timing gate (sanitized hosts
/// cannot make latency promises) while keeping every invariant gate.
///
/// Workloads run at scale 1 regardless of ILDP_BENCH_SCALE: this bench
/// measures scheduling behavior, not guest execution length.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "alpha/AlphaIsa.h"
#include "serve/ExecutionScheduler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace ildp;
using namespace ildp::bench;
using namespace ildp::serve;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

/// Traffic classes of the overload schedule. Hostile rides the normal and
/// batch lanes but is accounted separately — its fate is decided by its
/// tenant quota, not its lane.
enum class TrafficClass : uint8_t { Interactive, Normal, Batch, Hostile };
constexpr unsigned NumClasses = 4;

const char *className(TrafficClass C) {
  switch (C) {
  case TrafficClass::Interactive:
    return "interactive";
  case TrafficClass::Normal:
    return "normal";
  case TrafficClass::Batch:
    return "batch";
  case TrafficClass::Hostile:
    return "hostile";
  }
  return "?";
}

/// One planned arrival of the open-loop schedule.
struct Arrival {
  double ArrivalMs = 0;
  unsigned WorkloadIdx = 0;
  TrafficClass Class = TrafficClass::Normal;
};

/// One submitted request and its observed fate.
struct Item {
  std::future<ExecResponse> Fut;
  double SubmitMs = 0;
  double DoneMs = -1; ///< Stamped by the poller thread.
  unsigned WorkloadIdx = 0;
  TrafficClass Class = TrafficClass::Normal;
};

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t Idx = std::min(V.size() - 1, size_t(P / 100.0 * double(V.size())));
  return V[Idx];
}

/// Per-class accounting folded from the finished items.
struct ClassTally {
  uint64_t Submitted = 0;
  std::array<uint64_t, NumExecStatuses> ByStatus{};
  std::vector<double> OkSojournMs;
  uint32_t RetryAfterMin = ~uint32_t(0);
  uint32_t RetryAfterMax = 0;
};

void writeJson(bool Smoke, const FleetConfig &Config, unsigned Requests,
               double CapacityReqPerSec, double MeanServiceMs,
               double TargetReqPerSec, double DurationMs,
               const std::array<ClassTally, NumClasses> &Classes,
               const StatisticSet &FleetStats, double P99BoundMs,
               const std::map<std::string, bool> &Gates) {
  std::FILE *Out = std::fopen("BENCH_serve_overload.json", "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write BENCH_serve_overload.json\n");
    std::exit(1);
  }
  std::fprintf(Out, "{\n  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(Out,
               "  \"workers\": %u,\n  \"lane_depths\": [%zu, %zu, %zu],\n"
               "  \"lane_weights\": [%u, %u, %u],\n",
               Config.Workers, Config.LaneDepths[0], Config.LaneDepths[1],
               Config.LaneDepths[2], Config.LaneWeights[0],
               Config.LaneWeights[1], Config.LaneWeights[2]);
  std::fprintf(Out,
               "  \"calibration\": {\"req_per_sec\": %.1f, "
               "\"mean_service_ms\": %.3f},\n",
               CapacityReqPerSec, MeanServiceMs);
  std::fprintf(Out,
               "  \"overload\": {\n    \"target_req_per_sec\": %.1f,\n"
               "    \"submitted\": %u,\n    \"duration_ms\": %.1f,\n"
               "    \"p99_bound_ms\": %.1f,\n    \"classes\": [\n",
               TargetReqPerSec, Requests, DurationMs, P99BoundMs);
  for (unsigned C = 0; C != NumClasses; ++C) {
    const ClassTally &T = Classes[C];
    std::fprintf(Out,
                 "      {\"class\": \"%s\", \"submitted\": %llu",
                 className(TrafficClass(C)),
                 (unsigned long long)T.Submitted);
    for (unsigned S = 0; S != NumExecStatuses; ++S)
      if (T.ByStatus[S])
        std::fprintf(Out, ", \"%s\": %llu",
                     getExecStatusName(ExecStatus(S)),
                     (unsigned long long)T.ByStatus[S]);
    std::fprintf(Out, ", \"ok_p50_ms\": %.2f, \"ok_p99_ms\": %.2f",
                 percentile(T.OkSojournMs, 50),
                 percentile(T.OkSojournMs, 99));
    if (T.RetryAfterMax)
      std::fprintf(Out,
                   ", \"retry_after_ms_min\": %u, \"retry_after_ms_max\": %u",
                   T.RetryAfterMin, T.RetryAfterMax);
    std::fprintf(Out, "}%s\n", C + 1 != NumClasses ? "," : "");
  }
  std::fprintf(Out,
               "    ],\n    \"shed_expired_in_queue\": %llu,\n"
               "    \"shed_deadline_unmeetable\": %llu\n  },\n",
               (unsigned long long)FleetStats.get("serve.shed.expired_in_queue"),
               (unsigned long long)FleetStats.get(
                   "serve.shed.deadline_unmeetable"));
  std::fprintf(Out, "  \"gates\": {");
  bool First = true;
  for (const auto &[Name, Pass] : Gates) {
    std::fprintf(Out, "%s\"%s\": %s", First ? "" : ", ", Name.c_str(),
                 Pass ? "true" : "false");
    First = false;
  }
  std::fprintf(Out, "}\n}\n");
  std::fclose(Out);
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0)
    Smoke = true;
  else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
    return 2;
  }

  printBanner("Fleet overload chaos harness (10x sustained, mixed lanes)",
              "service extension; DESIGN.md section 14 overload control");

  const std::vector<std::string> &Names = workloads::workloadNames();
  const unsigned NumW = unsigned(Names.size());

  // Standalone cold-VM references: the bit-identity oracle for every Ok
  // response the overloaded fleet produces.
  std::vector<ArchState> Reference(NumW);
  for (unsigned I = 0; I != NumW; ++I) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(Names[I], Mem, 1);
    vm::VirtualMachine Vm(Mem, Img.EntryPc, vm::VmConfig{});
    if (Vm.run().Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "%s: reference run did not halt\n",
                   Names[I].c_str());
      return 1;
    }
    Reference[I] = Vm.interpreter().state();
  }

  // One shared warm store, seeded by cold saving runs of every workload,
  // so the served work is pure execution.
  std::string StorePath = "bench_serve_overload.tstore";
  std::remove(StorePath.c_str());
  for (const std::string &W : Names) {
    GuestMemory Mem;
    workloads::WorkloadImage Img = workloads::buildWorkload(W, Mem, 1);
    vm::VmConfig Config;
    Config.PersistPath = StorePath;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    if (Vm.run().Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "%s: seeding run did not halt\n", W.c_str());
      return 1;
    }
  }

  // The fleet under attack: shallow interactive lane (tight latency
  // bound), deeper normal/batch lanes, default 8:3:1 dequeue weights, and
  // a strict quota on the hostile tenant.
  FleetConfig Config;
  Config.Workers = 4;
  Config.QueueDepth = 64;
  Config.LaneDepths = {16, 64, 64};
  Config.StorePath = StorePath;
  TenantQuota HostileQuota;
  HostileQuota.TokensPerSec = 20;
  HostileQuota.Burst = 8;
  HostileQuota.MaxInFlight = 2;
  Config.TenantQuotas["hostile"] = HostileQuota;

  ExecutionScheduler Sched(Config);
  if (!Sched.fleet().storeLoaded()) {
    std::fprintf(stderr, "store %s did not load\n", StorePath.c_str());
    return 1;
  }
  Sched.fleet().registerWorkloads(/*Scale=*/1);

  // Phase 1: capacity calibration. A closed burst through the same fleet
  // measures requests/sec and per-workload service time under exactly the
  // worker/host conditions of the overload run, and seeds the admission
  // EWMA that prices deadline sheds.
  const unsigned CalRounds = 3;
  const unsigned CalN = NumW * CalRounds;
  std::vector<std::future<ExecResponse>> CalFutures;
  CalFutures.reserve(CalN);
  Clock::time_point CalStart = Clock::now();
  for (unsigned I = 0; I != CalN; ++I) {
    ExecRequest Req;
    Req.Workload = Names[I % NumW];
    CalFutures.push_back(Sched.submit(std::move(Req)));
  }
  std::vector<double> WorkloadWallMs(NumW, 0);
  for (unsigned I = 0; I != CalN; ++I) {
    ExecResponse Resp = CalFutures[I].get();
    if (!Resp.ok()) {
      std::fprintf(stderr, "calibration request %u failed: %s/%s\n", I,
                   getExecStatusName(Resp.Status), Resp.Detail);
      return 1;
    }
    WorkloadWallMs[I % NumW] += Resp.WallMicros / 1000.0 / CalRounds;
  }
  double CalElapsedMs = msSince(CalStart);
  double CapacityReqPerSec =
      CalElapsedMs > 0 ? 1000.0 * double(CalN) / CalElapsedMs : 1000.0;
  double MeanServiceMs = 0;
  for (double W : WorkloadWallMs)
    MeanServiceMs += W / double(NumW);

  // Classify workloads by measured service time: the fastest third is the
  // interactive traffic, the slowest third the batch traffic.
  std::vector<unsigned> BySpeed(NumW);
  for (unsigned I = 0; I != NumW; ++I)
    BySpeed[I] = I;
  std::sort(BySpeed.begin(), BySpeed.end(), [&](unsigned A, unsigned B) {
    return WorkloadWallMs[A] < WorkloadWallMs[B];
  });
  const unsigned Third = NumW / 3;

  // Phase 2: build the 10x open-loop schedule. Each tick carries one
  // well-behaved arrival (10 interactive : 7 normal : 3 batch per 20
  // ticks) and every second tick adds a hostile arrival, so ticks run at
  // (10x capacity) / 1.5.
  const double TargetReqPerSec = 10.0 * CapacityReqPerSec;
  const double TickPerSec = TargetReqPerSec / 1.5;
  const double DurationSec = Smoke ? 0.4 : 2.0;
  const unsigned MinN = Smoke ? 100 : 300;
  const unsigned MaxN = Smoke ? 600 : 6000;
  const uint64_t NormalDeadlineUs =
      uint64_t(std::max(1.0, MeanServiceMs * 30.0) * 1000.0);

  std::vector<Arrival> Schedule;
  for (unsigned Tick = 0; Schedule.size() < MaxN; ++Tick) {
    double At = 1000.0 * double(Tick) / TickPerSec;
    if (At > 1000.0 * DurationSec && Schedule.size() >= MinN)
      break;
    Arrival A;
    A.ArrivalMs = At;
    unsigned Slot = Tick % 20;
    if (Slot < 10) {
      A.Class = TrafficClass::Interactive;
      A.WorkloadIdx = BySpeed[Tick % Third];
    } else if (Slot < 17) {
      A.Class = TrafficClass::Normal;
      A.WorkloadIdx = BySpeed[Third + Tick % Third];
    } else {
      A.Class = TrafficClass::Batch;
      A.WorkloadIdx = BySpeed[NumW - Third + Tick % Third];
    }
    Schedule.push_back(A);
    if (Tick % 2 == 0 && Schedule.size() < MaxN) {
      Arrival H;
      H.ArrivalMs = At;
      H.Class = TrafficClass::Hostile;
      H.WorkloadIdx = BySpeed[Tick % Third];
      Schedule.push_back(H);
    }
  }
  const unsigned N = unsigned(Schedule.size());

  std::printf("capacity %.1f req/s (mean service %.2f ms); attacking at "
              "%.1f req/s: %u arrivals over %.1f ms%s\n\n",
              CapacityReqPerSec, MeanServiceMs, TargetReqPerSec, N,
              Schedule.back().ArrivalMs, Smoke ? " [smoke]" : "");

  // Submit on the arrival clock; a poller thread stamps completions.
  std::vector<Item> Items(N);
  std::atomic<unsigned> NSubmitted{0};
  std::atomic<bool> PollerGiveUp{false};
  Clock::time_point T0 = Clock::now();
  std::thread Poller([&] {
    unsigned Done = 0;
    while (!PollerGiveUp.load(std::memory_order_relaxed)) {
      unsigned Avail = NSubmitted.load(std::memory_order_acquire);
      for (unsigned I = 0; I != Avail; ++I) {
        Item &It = Items[I];
        if (It.DoneMs >= 0)
          continue;
        if (It.Fut.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          It.DoneMs = msSince(T0);
          ++Done;
        }
      }
      if (Done == N)
        return;
      // Safety valve: a broken future must fail the gate, not hang the
      // bench. Far beyond any drain time of this schedule.
      if (msSince(T0) > 180'000)
        return;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (unsigned I = 0; I != N; ++I) {
    const Arrival &A = Schedule[I];
    std::this_thread::sleep_until(
        T0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(A.ArrivalMs)));
    ExecRequest Req;
    Req.Workload = Names[A.WorkloadIdx];
    switch (A.Class) {
    case TrafficClass::Interactive:
      Req.Lane = Priority::Interactive;
      break;
    case TrafficClass::Normal:
      Req.Lane = Priority::Normal;
      Req.DeadlineMicros = NormalDeadlineUs;
      break;
    case TrafficClass::Batch:
      Req.Lane = Priority::Batch;
      break;
    case TrafficClass::Hostile:
      Req.Tenant = "hostile";
      Req.Lane = I % 4 < 2 ? Priority::Normal : Priority::Batch;
      break;
    }
    Items[I].SubmitMs = msSince(T0);
    Items[I].WorkloadIdx = A.WorkloadIdx;
    Items[I].Class = A.Class;
    Items[I].Fut = Sched.submit(std::move(Req));
    NSubmitted.store(I + 1, std::memory_order_release);
  }

  // Drain: every queued request executes, every promise is fulfilled.
  Sched.shutdown(/*FinishQueued=*/true);
  Poller.join();
  double DurationMs = msSince(T0);

  // Fold outcomes and check every invariant.
  std::array<ClassTally, NumClasses> Classes;
  unsigned Unfulfilled = 0, Mismatched = 0, Untyped = 0, QuotaNoRetry = 0;
  for (unsigned I = 0; I != N; ++I) {
    Item &It = Items[I];
    ClassTally &T = Classes[unsigned(It.Class)];
    ++T.Submitted;
    if (It.DoneMs < 0 || It.Fut.wait_for(std::chrono::seconds(0)) !=
                             std::future_status::ready) {
      ++Unfulfilled;
      continue;
    }
    ExecResponse Resp = It.Fut.get();
    ++T.ByStatus[unsigned(Resp.Status)];
    switch (Resp.Status) {
    case ExecStatus::Ok: {
      const ArchState &Ref = Reference[It.WorkloadIdx];
      bool Same = Resp.Checksum == Ref.readGpr(alpha::RegV0);
      for (unsigned Reg = 0; Same && Reg != alpha::NumGprs; ++Reg)
        Same = Resp.Arch.readGpr(Reg) == Ref.readGpr(Reg);
      if (!Same)
        ++Mismatched;
      T.OkSojournMs.push_back(It.DoneMs - It.SubmitMs);
      break;
    }
    case ExecStatus::TenantQuotaExceeded:
      if (Resp.RetryAfterMs < 1)
        ++QuotaNoRetry;
      T.RetryAfterMin = std::min(T.RetryAfterMin, Resp.RetryAfterMs);
      T.RetryAfterMax = std::max(T.RetryAfterMax, Resp.RetryAfterMs);
      [[fallthrough]];
    case ExecStatus::QueueFull:
    case ExecStatus::DeadlineExceeded:
      if (Resp.Detail[0] == '\0')
        ++Untyped;
      break;
    default:
      // Trapped/BadImage/InstBudget/ShutDown cannot legitimately appear
      // in this schedule: overload produced a wrong status.
      ++Untyped;
      break;
    }
  }

  // Interactive p99 bound: an admitted interactive request sits behind at
  // most its full lane, interleaved at TotalWeight/InteractiveWeight by
  // the deficit dequeue, divided across the workers — plus slack for its
  // own service and host noise. A shared-FIFO cliff (interactive behind
  // the whole normal+batch backlog) lands far beyond this.
  const unsigned TotalWeight =
      Config.LaneWeights[0] + Config.LaneWeights[1] + Config.LaneWeights[2];
  const double WorstDequeues =
      std::ceil(double(Config.LaneDepths[0] * TotalWeight) /
                double(Config.LaneWeights[0]));
  const double P99BoundMs =
      2.0 * (WorstDequeues / double(Config.Workers) + 2.0) * MeanServiceMs +
      50.0;

  StatisticSet FleetStats = Sched.fleet().stats();
  const ClassTally &Inter = Classes[unsigned(TrafficClass::Interactive)];
  const ClassTally &Hostile = Classes[unsigned(TrafficClass::Hostile)];
  double InterP99 = percentile(Inter.OkSojournMs, 99);
  uint64_t Rejected = 0;
  for (const ClassTally &T : Classes)
    for (unsigned S = 0; S != NumExecStatuses; ++S)
      if (ExecStatus(S) != ExecStatus::Ok)
        Rejected += T.ByStatus[S];

  std::map<std::string, bool> Gates;
  Gates["all_promises_fulfilled"] = Unfulfilled == 0;
  Gates["responses_bit_identical"] = Mismatched == 0;
  Gates["rejections_typed"] = Untyped == 0;
  Gates["quota_retry_after_populated"] = QuotaNoRetry == 0;
  if (!Smoke) {
    Gates["overload_realized"] = Rejected > 0;
    Gates["hostile_quota_enforced"] =
        Hostile.ByStatus[unsigned(ExecStatus::TenantQuotaExceeded)] > 0;
    Gates["interactive_p99_bounded"] =
        Inter.OkSojournMs.size() >= 20 && InterP99 <= P99BoundMs;
  }

  TablePrinter T({"class", "submitted", "ok", "queue-full", "quota",
                  "deadline", "p50 ms", "p99 ms"});
  for (unsigned C = 0; C != NumClasses; ++C) {
    const ClassTally &Tc = Classes[C];
    T.beginRow();
    T.cell(className(TrafficClass(C)));
    T.cellInt(int64_t(Tc.Submitted));
    T.cellInt(int64_t(Tc.ByStatus[unsigned(ExecStatus::Ok)]));
    T.cellInt(int64_t(Tc.ByStatus[unsigned(ExecStatus::QueueFull)]));
    T.cellInt(
        int64_t(Tc.ByStatus[unsigned(ExecStatus::TenantQuotaExceeded)]));
    T.cellInt(int64_t(Tc.ByStatus[unsigned(ExecStatus::DeadlineExceeded)]));
    T.cellFloat(percentile(Tc.OkSojournMs, 50), 2);
    T.cellFloat(percentile(Tc.OkSojournMs, 99), 2);
  }
  T.print();
  std::printf("\nsheds: expired_in_queue=%llu deadline_unmeetable=%llu; "
              "interactive p99 %.2f ms (bound %.1f ms)\n",
              (unsigned long long)FleetStats.get("serve.shed.expired_in_queue"),
              (unsigned long long)FleetStats.get(
                  "serve.shed.deadline_unmeetable"),
              InterP99, P99BoundMs);

  writeJson(Smoke, Config, N, CapacityReqPerSec, MeanServiceMs,
            TargetReqPerSec, DurationMs, Classes, FleetStats, P99BoundMs,
            Gates);
  std::printf("results written to BENCH_serve_overload.json\n");
  std::remove(StorePath.c_str());

  bool AllPass = true;
  for (const auto &[Name, Pass] : Gates) {
    std::printf("gate %-28s %s\n", Name.c_str(), Pass ? "OK" : "FAILED");
    AllPass = AllPass && Pass;
  }
  if (!AllPass) {
    std::printf("\nOVERLOAD CHECK FAILED\n");
    return 1;
  }
  std::printf("\noverload check OK: degradation was typed, bounded, and "
              "bit-exact\n");
  return 0;
}
