//===- bench/bench_fig4_chaining_mispredictions.cpp - Figure 4 ------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: branch/jump mispredictions per 1,000 instructions for the
/// code-straightening-only simulator under the three chaining policies,
/// against the original program:
///   original        — native Alpha with the conventional hardware RAS,
///   no_pred         — every indirect jump goes to the shared dispatch
///                     code (one BTB entry serves all dispatch jumps),
///   sw_pred.no_ras  — translation-time software jump prediction,
///   sw_pred.ras     — software prediction plus the dual-address RAS.
///
/// Paper shape: no_pred >> sw_pred.no_ras (~half) > sw_pred.ras ~= original.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Figure 4: mispredictions per 1,000 instructions",
              "Figure 4 (Section 4.3)");
  TablePrinter T({"workload", "original", "no_pred", "sw_pred.no_ras",
                  "sw_pred.ras"});
  double Sum[4] = {0, 0, 0, 0};
  unsigned N = 0;

  for (const std::string &W : workloads::workloadNames()) {
    double Row[4];
    Row[0] = runOriginal(W, /*ConventionalRas=*/true).mispredictsPer1k();
    unsigned Idx = 1;
    for (dbt::ChainPolicy Policy :
         {dbt::ChainPolicy::NoPred, dbt::ChainPolicy::SwPredNoRas,
          dbt::ChainPolicy::SwPredRas}) {
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Straight;
      Dbt.Chaining = Policy;
      Row[Idx++] = runOnSuperscalar(W, Dbt).mispredictsPer1k();
    }
    T.beginRow();
    T.cell(W);
    for (unsigned I = 0; I != 4; ++I) {
      T.cellFloat(Row[I], 2);
      Sum[I] += Row[I];
    }
    ++N;
  }
  T.beginRow();
  T.cell("average");
  for (unsigned I = 0; I != 4; ++I)
    T.cellFloat(Sum[I] / N, 2);
  T.print();
  std::printf("\npaper shape: no_pred is worst; software prediction roughly "
              "halves it; the\ndual-address RAS restores near-original "
              "misprediction rates.\n");
  return 0;
}
