//===- bench/BenchUtil.cpp - Shared experiment harness --------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <cstdlib>

using namespace ildp;
using namespace ildp::bench;

unsigned bench::benchScale() {
  if (const char *Env = std::getenv("ILDP_BENCH_SCALE")) {
    int Value = std::atoi(Env);
    if (Value >= 1)
      return unsigned(Value);
  }
  return 1;
}

RunOutput bench::runOnIldp(const std::string &Workload,
                           const dbt::DbtConfig &Dbt,
                           const uarch::IldpParams &Params) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.Dbt = Dbt;
  uarch::IldpModel Model(Params);
  vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
  Vm.setTimingModel(&Model);
  vm::RunResult Result = Vm.run();
  Model.finish();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "bench: %s did not halt cleanly\n",
                 Workload.c_str());
    std::exit(1);
  }
  RunOutput Out;
  Out.Vm = Vm.stats();
  Out.Pipe = Model.stats();
  Out.Front = Model.frontEndStats();
  return Out;
}

RunOutput bench::runOnSuperscalar(const std::string &Workload,
                                  const dbt::DbtConfig &Dbt) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.Dbt = Dbt;
  uarch::SuperscalarParams Params;
  uarch::SuperscalarModel Model(Params, /*ConventionalRas=*/false);
  vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
  Vm.setTimingModel(&Model);
  vm::RunResult Result = Vm.run();
  Model.finish();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "bench: %s did not halt cleanly\n",
                 Workload.c_str());
    std::exit(1);
  }
  RunOutput Out;
  Out.Vm = Vm.stats();
  Out.Pipe = Model.stats();
  Out.Front = Model.frontEndStats();
  return Out;
}

RunOutput bench::runOriginal(const std::string &Workload,
                             bool ConventionalRas) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(Workload, Mem, benchScale());
  uarch::SuperscalarParams Params;
  uarch::SuperscalarModel Model(Params, ConventionalRas);
  StepStatus Status =
      vm::runOriginal(Mem, Img.EntryPc, &Model, 4'000'000'000ull, nullptr);
  Model.finish();
  if (Status != StepStatus::Halted) {
    std::fprintf(stderr, "bench: original %s did not halt cleanly\n",
                 Workload.c_str());
    std::exit(1);
  }
  RunOutput Out;
  Out.Pipe = Model.stats();
  Out.Front = Model.frontEndStats();
  Out.OriginalInsts = Model.stats().Insts;
  return Out;
}

RunOutput bench::runFunctional(const std::string &Workload,
                               const dbt::DbtConfig &Dbt) {
  GuestMemory Mem;
  workloads::WorkloadImage Img =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.Dbt = Dbt;
  vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "bench: %s did not halt cleanly\n",
                 Workload.c_str());
    std::exit(1);
  }
  RunOutput Out;
  Out.Vm = Vm.stats();
  return Out;
}

double bench::harmonicMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += 1.0 / V;
  return double(Values.size()) / Sum;
}

void bench::printBanner(const std::string &Title,
                        const std::string &PaperRef) {
  std::printf("================================================================"
              "===============\n");
  std::printf("%s\n", Title.c_str());
  std::printf("Reproduces: %s — Kim & Smith, \"Dynamic Binary Translation "
              "for\nAccumulator-Oriented Architectures\", CGO 2003. "
              "(workload scale %u)\n",
              PaperRef.c_str(), benchScale());
  std::printf("================================================================"
              "===============\n");
}
