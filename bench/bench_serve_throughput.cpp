//===- bench/bench_serve_throughput.cpp - Fleet service throughput --------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the fleet service end to end: sustained requests/sec and
/// p50/p99 request sojourn (submit to response) against worker count,
/// under an open-loop burst of mixed-workload requests — every workload
/// submitted round-robin, all at once, into a fleet warm-started from one
/// shared read-only store. Warm requests do zero translation work, so the
/// served work is pure execution and should scale with workers until the
/// machine runs out of cores.
///
/// The scaling check (>= 2x requests/sec from 1 to 4 workers) is enforced
/// only when the host actually has >= 4 hardware threads; on smaller
/// machines the numbers are still reported, with the check marked skipped
/// — a 1-core host cannot demonstrate parallel speedup, and pretending
/// otherwise would make the bench flaky instead of informative.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "serve/ExecutionScheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

using namespace ildp;
using namespace ildp::bench;
using namespace ildp::serve;

namespace {

using Clock = std::chrono::steady_clock;

struct LoadResult {
  unsigned Requests = 0;
  unsigned Ok = 0;
  double ElapsedMs = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double ReqPerSec = 0;
  uint64_t StoreHits = 0;
  uint64_t TransUnits = 0;
};

/// Submits \p Rounds x all-workloads requests as one open-loop burst and
/// waits for every response, timing each request's sojourn.
LoadResult runLoad(const std::string &StorePath, unsigned Workers,
                   unsigned Rounds) {
  const std::vector<std::string> &Names = workloads::workloadNames();
  const unsigned N = unsigned(Names.size()) * Rounds;

  FleetConfig Config;
  Config.Workers = Workers;
  Config.QueueDepth = N; // The burst must never be admission-rejected.
  Config.StorePath = StorePath;
  ExecutionScheduler Sched(Config);
  if (!Sched.fleet().storeLoaded()) {
    std::fprintf(stderr, "store %s did not load\n", StorePath.c_str());
    std::exit(1);
  }
  Sched.fleet().registerWorkloads(benchScale());

  std::vector<std::future<ExecResponse>> Futures;
  Futures.reserve(N);
  Clock::time_point Start = Clock::now();
  for (unsigned I = 0; I != N; ++I) {
    ExecRequest Req;
    Req.Workload = Names[I % Names.size()];
    Futures.push_back(Sched.submit(Req));
  }

  // Open loop: all requests arrived at t=0, so a request's sojourn is
  // simply its completion time. Poll-stamp completions as they land.
  std::vector<double> SojournMs(N, -1.0);
  unsigned Done = 0;
  while (Done != N) {
    for (unsigned I = 0; I != N; ++I) {
      if (SojournMs[I] >= 0)
        continue;
      if (Futures[I].wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        SojournMs[I] = std::chrono::duration<double, std::milli>(
                           Clock::now() - Start)
                           .count();
        ++Done;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  LoadResult R;
  R.Requests = N;
  for (unsigned I = 0; I != N; ++I) {
    ExecResponse Resp = Futures[I].get();
    if (Resp.ok())
      ++R.Ok;
    R.StoreHits += Resp.Stats.get("persist.store_hit");
    R.TransUnits += Resp.Stats.get("dbt.cost.total");
  }
  R.ElapsedMs = *std::max_element(SojournMs.begin(), SojournMs.end());
  R.ReqPerSec = R.ElapsedMs > 0 ? 1000.0 * double(N) / R.ElapsedMs : 0;
  std::sort(SojournMs.begin(), SojournMs.end());
  R.P50Ms = SojournMs[N / 2];
  R.P99Ms = SojournMs[std::min(N - 1, (N * 99) / 100)];
  Sched.shutdown(/*FinishQueued=*/true);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bool CheckScaling = true;
  if (argc == 2 && std::strcmp(argv[1], "--no-scaling-check") == 0)
    CheckScaling = false;
  else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--no-scaling-check]\n", argv[0]);
    return 2;
  }

  printBanner("Fleet service throughput vs worker count",
              "service extension; amortization argument of Section 4.2");

  // One shared store, seeded by cold saving runs of every workload.
  std::string StorePath = "bench_serve_throughput.tstore";
  std::remove(StorePath.c_str());
  for (const std::string &W : workloads::workloadNames()) {
    GuestMemory Mem;
    workloads::WorkloadImage Img =
        workloads::buildWorkload(W, Mem, benchScale());
    vm::VmConfig Config;
    Config.PersistPath = StorePath;
    vm::VirtualMachine Vm(Mem, Img.EntryPc, Config);
    if (Vm.run().Reason != vm::StopReason::Halted) {
      std::fprintf(stderr, "%s: seeding run did not halt\n", W.c_str());
      return 1;
    }
  }

  const unsigned Hw = std::thread::hardware_concurrency();
  const unsigned Rounds = 4; // 12 workloads x 4 = 48 requests per burst.
  std::printf("host hardware threads: %u; burst: %u mixed requests\n\n", Hw,
              unsigned(workloads::workloadNames().size()) * Rounds);

  TablePrinter T({"workers", "requests", "ok", "req/s", "p50 ms", "p99 ms",
                  "speedup", "xlate units"});
  double Baseline = 0, At4 = 0;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    LoadResult R = runLoad(StorePath, Workers, Rounds);
    if (Workers == 1)
      Baseline = R.ReqPerSec;
    if (Workers == 4)
      At4 = R.ReqPerSec;
    T.beginRow();
    T.cellInt(Workers);
    T.cellInt(R.Requests);
    T.cellInt(R.Ok);
    T.cellFloat(R.ReqPerSec, 1);
    T.cellFloat(R.P50Ms, 2);
    T.cellFloat(R.P99Ms, 2);
    T.cellFloat(Baseline > 0 ? R.ReqPerSec / Baseline : 0, 2);
    T.cellInt(int64_t(R.TransUnits));
    if (R.Ok != R.Requests) {
      T.print();
      std::fprintf(stderr, "\n%u/%u requests failed at %u workers\n",
                   R.Requests - R.Ok, R.Requests, Workers);
      return 1;
    }
    if (R.TransUnits != 0) {
      T.print();
      std::fprintf(stderr,
                   "\nwarm fleet spent translation work (%llu units)\n",
                   (unsigned long long)R.TransUnits);
      return 1;
    }
  }
  T.print();
  std::remove(StorePath.c_str());

  if (!CheckScaling) {
    std::printf("\nscaling check disabled\n");
    return 0;
  }
  if (Hw < 4) {
    std::printf("\nscaling check SKIPPED: host has %u hardware threads "
                "(need >= 4 to demonstrate 1->4 worker speedup)\n",
                Hw);
    return 0;
  }
  double Speedup = Baseline > 0 ? At4 / Baseline : 0;
  if (Speedup < 2.0) {
    std::printf("\nscaling check FAILED: 4-worker throughput is %.2fx the "
                "1-worker baseline (need >= 2x)\n",
                Speedup);
    return 1;
  }
  std::printf("\nscaling check OK: 4 workers serve %.2fx the requests/sec "
              "of 1 worker\n",
              Speedup);
  return 0;
}
