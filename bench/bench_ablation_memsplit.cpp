//===- bench/bench_ablation_memsplit.cpp - Memory-split ablation ----------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.5 discusses not splitting memory instructions ("one way to
/// deal with this instruction count expansion is to not split memory
/// instructions into two"). This ablation runs the modified ISA on the
/// ILDP machine with and without address-add decomposition and reports the
/// instruction-count and IPC effect.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Ablation: memory-operation splitting (modified ISA, ILDP)",
              "Section 4.5 discussion");
  TablePrinter T({"workload", "rel.insts split", "rel.insts nosplit",
                  "ipc split", "ipc nosplit"});
  std::vector<double> IpcSplit, IpcNoSplit;
  uarch::IldpParams Params;

  for (const std::string &W : workloads::workloadNames()) {
    double Rel[2], Ipc[2];
    for (int NoSplit = 0; NoSplit != 2; ++NoSplit) {
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Modified;
      Dbt.SplitMemoryOps = NoSplit == 0;
      RunOutput Out = runOnIldp(W, Dbt, Params);
      const StatisticSet &S = Out.Vm;
      uint64_t Executed = S.get("frag.insts") + S.get("dispatch.insts") +
                          S.get("stub.insts");
      uint64_t VInsts = S.get("vm.vinsts_translated");
      Rel[NoSplit] = VInsts ? double(Executed) / double(VInsts) : 0;
      Ipc[NoSplit] = Out.vIpc();
    }
    T.beginRow();
    T.cell(W);
    T.cellFloat(Rel[0], 2);
    T.cellFloat(Rel[1], 2);
    T.cellFloat(Ipc[0], 3);
    T.cellFloat(Ipc[1], 3);
    IpcSplit.push_back(Ipc[0]);
    IpcNoSplit.push_back(Ipc[1]);
  }
  T.beginRow();
  T.cell("harmonic mean");
  T.cell("");
  T.cell("");
  T.cellFloat(harmonicMean(IpcSplit), 3);
  T.cellFloat(harmonicMean(IpcNoSplit), 3);
  T.print();
  std::printf("\nexpected: not splitting memory ops removes the address-add "
              "instructions,\nreducing dynamic expansion and recovering "
              "some V-ISA IPC (at decode-complexity\ncost the timing model "
              "does not charge).\n");
  return 0;
}
