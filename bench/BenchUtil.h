//===- bench/BenchUtil.h - Shared experiment harness ----------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table/figure reproduction binaries: run one
/// workload through a full configuration (VM + timing model) and hand back
/// every statistic the paper's tables and figures need.
///
/// The workload scale factor can be raised with the ILDP_BENCH_SCALE
/// environment variable (default 1) for longer, steadier runs.
///
//===----------------------------------------------------------------------===//

#ifndef ILDP_BENCH_BENCHUTIL_H
#define ILDP_BENCH_BENCHUTIL_H

#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "uarch/FrontEnd.h"
#include "uarch/IldpModel.h"
#include "uarch/SuperscalarModel.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace ildp {
namespace bench {

/// Everything one experiment run produces.
struct RunOutput {
  StatisticSet Vm;               ///< VM statistics (empty for original runs).
  uarch::PipelineStats Pipe;     ///< Backend pipeline statistics.
  uarch::FrontEndStats Front;    ///< Prediction/fetch statistics.
  uint64_t OriginalInsts = 0;    ///< Retired V-ISA instructions (original
                                 ///< runs; NOPs included).

  /// Committed instructions including VM-synthesized dispatch/stub code.
  uint64_t totalExecuted() const { return Pipe.Insts; }
  double vIpc() const { return Pipe.ipc(); }
  double nativeIpc() const { return Pipe.nativeIpc(); }
  /// Branch/jump mispredictions per 1,000 committed instructions (Fig. 4).
  double mispredictsPer1k() const {
    return Pipe.Insts
               ? 1000.0 * double(Front.totalMispredicts()) / double(Pipe.Insts)
               : 0.0;
  }
};

/// Workload scale factor (ILDP_BENCH_SCALE, default 1).
unsigned benchScale();

/// Runs \p Workload under the co-designed VM with \p Dbt on the ILDP
/// machine \p Params.
RunOutput runOnIldp(const std::string &Workload, const dbt::DbtConfig &Dbt,
                    const uarch::IldpParams &Params);

/// Runs \p Workload under the DBT (usually the straightening backend) on
/// the reference superscalar. \p ConventionalRas enables the hardware RAS
/// (meaningless for translated code; used by original runs).
RunOutput runOnSuperscalar(const std::string &Workload,
                           const dbt::DbtConfig &Dbt);

/// Runs \p Workload natively (no DBT) on the reference superscalar.
RunOutput runOriginal(const std::string &Workload, bool ConventionalRas);

/// Runs \p Workload under the VM without a timing model (fast functional
/// run; used by translation-statistics experiments).
RunOutput runFunctional(const std::string &Workload,
                        const dbt::DbtConfig &Dbt);

/// Harmonic mean of per-workload IPCs (the conventional aggregate).
double harmonicMean(const std::vector<double> &Values);

/// Prints the standard bench banner.
void printBanner(const std::string &Title, const std::string &PaperRef);

} // namespace bench
} // namespace ildp

#endif // ILDP_BENCH_BENCHUTIL_H
