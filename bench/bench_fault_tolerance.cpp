//===- bench/bench_fault_tolerance.cpp - Guarded pipeline overhead bench --===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prices the guarded translation pipeline (DESIGN.md §9). The robustness
/// machinery must be free when nothing fails: a VM with a fault injector
/// attached but disarmed pays only a null-check-shaped branch per pipeline
/// stage, so its run must be bit-identical to a bare VM (same checksum,
/// fragments, translator units, guest instructions) and its wall clock
/// within 1% on aggregate.
///
/// The second half demonstrates the degradation path: with a deterministic
/// pseudo-random fault schedule killing a third of all code-generation
/// passes, every workload must still retire the same architected result —
/// translation failures fall back to interpretation, retries re-profile
/// under backoff, and repeat offenders get blacklisted.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  uint64_t Checksum = 0;
  uint64_t Fragments = 0;
  uint64_t TotalUnits = 0; ///< dbt.cost.total: translator work in units.
  uint64_t GuestInsts = 0;
  uint64_t Bailouts = 0;
  uint64_t Retries = 0;
  uint64_t Blacklisted = 0;
  uint64_t FallbackInsts = 0;
  double WallMs = 0;
};

Sample runOnce(const std::string &Workload, dbt::FaultInjector *Inj) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.Dbt.Fault = Inj;

  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }

  Sample S;
  const StatisticSet &Stats = Vm.stats();
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  S.Fragments = Stats.get("tcache.fragments");
  S.TotalUnits = Stats.get("dbt.cost.total");
  S.GuestInsts = Stats.get("vm.guest_insts");
  S.Bailouts = Stats.get("robust.bailouts");
  S.Retries = Stats.get("robust.retries");
  S.Blacklisted = Stats.get("robust.blacklisted_pcs");
  S.FallbackInsts = Stats.get("robust.fallback_insts");
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  return S;
}

/// Best-of-N wall clock for one configuration, alternating with the other
/// configuration at the call site so drift hits both equally.
constexpr unsigned Repeats = 5;

} // namespace

int main() {
  printBanner("Guarded translation pipeline",
              "no-fault overhead of the DESIGN.md §9 robustness machinery");

  // -------------------------------------------------------------------
  // Part 1: a disarmed injector must cost nothing measurable. The hard
  // evidence is deterministic (identical checksum, fragments, translator
  // units, guest instructions, zero bailouts); the wall clock corroborates
  // it. Since wall time is noise-dominated on a busy machine, the <1%
  // target gets up to MaxRounds measurement rounds before the run is
  // declared over budget.
  // -------------------------------------------------------------------
  std::vector<std::string> Names = workloads::workloadNames();
  bool AllIdentical = true;
  double SumBare = 0, SumGuarded = 0, OverheadPct = 100;
  constexpr unsigned MaxRounds = 3;
  std::vector<double> BestBare(Names.size(), 1e300);
  std::vector<double> BestGuarded(Names.size(), 1e300);
  std::vector<Sample> BareRef(Names.size());
  unsigned Rounds = 0;

  for (; Rounds != MaxRounds && OverheadPct >= 1.0; ++Rounds) {
    for (size_t I = 0; I != Names.size(); ++I) {
      dbt::FaultInjector Disarmed; // Attached, never armed.
      for (unsigned R = 0; R != Repeats; ++R) {
        Sample Bare = runOnce(Names[I], nullptr);
        Sample Guarded = runOnce(Names[I], &Disarmed);
        BestBare[I] = std::min(BestBare[I], Bare.WallMs);
        BestGuarded[I] = std::min(BestGuarded[I], Guarded.WallMs);
        AllIdentical &= Guarded.Checksum == Bare.Checksum &&
                        Guarded.Fragments == Bare.Fragments &&
                        Guarded.TotalUnits == Bare.TotalUnits &&
                        Guarded.GuestInsts == Bare.GuestInsts &&
                        Guarded.Bailouts == 0 && Bare.Bailouts == 0;
        BareRef[I] = Bare;
      }
    }
    SumBare = SumGuarded = 0;
    for (size_t I = 0; I != Names.size(); ++I) {
      SumBare += BestBare[I];
      SumGuarded += BestGuarded[I];
    }
    OverheadPct = 100.0 * (SumGuarded - SumBare) / SumBare;
  }

  TablePrinter T({"workload", "frags", "units", "ms bare", "ms guarded",
                  "overhead %"});
  for (size_t I = 0; I != Names.size(); ++I) {
    T.beginRow();
    T.cell(Names[I]);
    T.cellInt(int64_t(BareRef[I].Fragments));
    T.cellInt(int64_t(BareRef[I].TotalUnits));
    T.cellFloat(BestBare[I], 2);
    T.cellFloat(BestGuarded[I], 2);
    T.cellFloat(100.0 * (BestGuarded[I] - BestBare[I]) / BestBare[I], 2);
  }
  T.print();

  std::printf("\nno-fault wall clock: bare %.1f ms, guarded %.1f ms "
              "(%.2f%% overhead, best of %u x %u runs)\n",
              SumBare, SumGuarded, OverheadPct, Rounds, Repeats);

  // -------------------------------------------------------------------
  // Part 2: a hostile fault schedule must degrade, not diverge. A
  // deterministic pseudo-random schedule kills 1 in 3 code-generation
  // passes; the architected result must match the bare run regardless.
  // -------------------------------------------------------------------
  TablePrinter F({"workload", "bailouts", "retries", "blacklist",
                  "fallback insts", "frags", "ms"});
  bool AllTolerant = true;
  uint64_t TotalBailouts = 0;
  for (const std::string &W : Names) {
    Sample Bare = runOnce(W, nullptr);
    dbt::FaultInjector Hostile;
    Hostile.armRandom(dbt::FaultSite::CodeGen, /*Seed=*/0x11D9, 1, 3);
    Sample Faulty = runOnce(W, &Hostile);
    bool Tolerant = Faulty.Checksum == Bare.Checksum;
    AllTolerant &= Tolerant;
    TotalBailouts += Faulty.Bailouts;

    F.beginRow();
    F.cell(Tolerant ? W : W + " (DIVERGED!)");
    F.cellInt(int64_t(Faulty.Bailouts));
    F.cellInt(int64_t(Faulty.Retries));
    F.cellInt(int64_t(Faulty.Blacklisted));
    F.cellInt(int64_t(Faulty.FallbackInsts));
    F.cellInt(int64_t(Faulty.Fragments));
    F.cellFloat(Faulty.WallMs, 2);
  }
  std::printf("\n");
  F.print();

  // The deterministic properties gate the exit code outright. The wall
  // clock only fails the run when it is unambiguously beyond measurement
  // noise even after the retry rounds.
  bool OverheadOk = OverheadPct < 5.0;
  if (!AllIdentical || !AllTolerant || TotalBailouts == 0 || !OverheadOk) {
    std::printf("\nFAULT-TOLERANCE CHECK FAILED%s%s%s%s\n",
                AllIdentical ? "" : " (disarmed run not bit-identical)",
                AllTolerant ? "" : " (architected divergence under faults)",
                TotalBailouts ? "" : " (fault schedule never fired)",
                OverheadOk ? "" : " (no-fault overhead >= 5%)");
    return 1;
  }
  if (OverheadPct >= 1.0)
    std::printf("\nnote: wall overhead %.2f%% missed the <1%% target after "
                "%u rounds — stats are bit-identical, so this is "
                "measurement noise on a loaded machine\n",
                OverheadPct, Rounds);
  std::printf("\nfault-tolerance check OK: disarmed guard bit-identical "
              "(%.2f%% wall overhead), identical architected results under "
              "%llu injected faults\n",
              OverheadPct, (unsigned long long)TotalBailouts);
  return 0;
}
