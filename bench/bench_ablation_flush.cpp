//===- bench/bench_ablation_flush.cpp - Phase-flush extension ablation ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the Dynamo-style translation-cache flush extension.
/// Section 4.1 of the paper observes that its VM never reconsiders a
/// fragment ("once a fragment is constructed there is no second chance")
/// and conjectures phased programs pay for it. This harness runs a
/// synthetic multi-phase program — each phase exercises a disjoint set of
/// hot loops — with the flush policy off (the paper's system) and on
/// (the extension), and reports the translation-cache population.
///
/// Expected: with flushing, dead phase-1 fragments are evicted, so the
/// live cache at exit is a fraction of the no-flush footprint, at the
/// cost of a few retranslations after each flush.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "alpha/Assembler.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::alpha;
using Op = Opcode;

namespace {

/// Builds \p Phases phases of \p LoopsPerPhase disjoint hot loops. Every
/// loop runs \p Trips iterations of a small mixed body, far above the hot
/// threshold, then is never revisited.
GuestMemory buildPhasedProgram(unsigned Phases, unsigned LoopsPerPhase,
                               unsigned Trips, uint64_t &Entry,
                               uint64_t &Checksum) {
  Assembler Asm(0x10000);
  Asm.loadImm(16, 0x40000);
  Asm.movi(0, 9);
  for (unsigned Phase = 0; Phase != Phases; ++Phase) {
    for (unsigned L = 0; L != LoopsPerPhase; ++L) {
      Asm.loadImm(17, int64_t(Trips));
      auto Loop = Asm.createLabel("p" + std::to_string(Phase) + "_" +
                                  std::to_string(L));
      Asm.bind(Loop);
      Asm.operatei(Op::ADDQ, 9, uint8_t(1 + L % 7), 9);
      Asm.operatei(Op::XOR, 9, uint8_t(L % 32), 3);
      Asm.ldq(4, int32_t(L % 16) * 8, 16);
      Asm.operate(Op::ADDQ, 3, 4, 9);
      Asm.operatei(Op::SUBL, 17, 1, 17);
      Asm.condBr(Op::BNE, 17, Loop);
    }
  }
  Asm.mov(9, RegV0);
  Asm.halt();
  Entry = 0x10000;

  GuestMemory Mem;
  std::vector<uint32_t> Words = Asm.finalize();
  for (size_t I = 0; I != Words.size(); ++I)
    Mem.poke32(0x10000 + I * 4, Words[I]);
  Mem.mapRegion(0x40000, 0x1000);

  Interpreter Ref(Mem);
  Ref.state().Pc = Entry;
  if (Ref.run(1'000'000'000).Status != StepStatus::Halted) {
    std::fprintf(stderr, "phased reference run did not halt\n");
    Checksum = ~uint64_t(0);
  } else {
    Checksum = Ref.state().readGpr(RegV0);
  }
  // Rebuild a fresh image (the reference run mutated nothing outside
  // registers, but keep the runs symmetric).
  GuestMemory Fresh;
  for (size_t I = 0; I != Words.size(); ++I)
    Fresh.poke32(0x10000 + I * 4, Words[I]);
  Fresh.mapRegion(0x40000, 0x1000);
  return Fresh;
}

struct FlushRow {
  uint64_t Flushes = 0;
  uint64_t Translations = 0; ///< Fragments ever constructed.
  uint64_t LiveFragments = 0;
  uint64_t LiveBytes = 0;
  double TranslatedPct = 0;
  bool ChecksumOk = false;
};

FlushRow runConfig(unsigned Phases, unsigned LoopsPerPhase, unsigned Trips,
                   bool FlushOn) {
  uint64_t Entry = 0, Checksum = 0;
  GuestMemory Mem =
      buildPhasedProgram(Phases, LoopsPerPhase, Trips, Entry, Checksum);
  vm::VmConfig Config;
  Config.Dbt.Variant = iisa::IsaVariant::Modified;
  Config.FlushOnPhaseChange = FlushOn;
  Config.PhaseWindow = 60'000;
  Config.PhaseFragmentThreshold = 12;
  vm::VirtualMachine Vm(Mem, Entry, Config);
  FlushRow Row;
  if (Vm.run().Reason != vm::StopReason::Halted)
    return Row;
  const StatisticSet &S = Vm.stats();
  Row.Flushes = S.get("tcache.flushes");
  Row.Translations = S.get("dbt.fragments");
  Row.LiveFragments = S.get("tcache.fragments");
  Row.LiveBytes = S.get("tcache.body_bytes");
  uint64_t Guest = S.get("vm.guest_insts");
  Row.TranslatedPct =
      Guest ? 100.0 * double(S.get("vm.vinsts_translated")) / double(Guest)
            : 0.0;
  Row.ChecksumOk = Vm.interpreter().state().readGpr(RegV0) == Checksum;
  return Row;
}

} // namespace

int main() {
  bench::printBanner(
      "Ablation: Dynamo-style cache flush on phase changes (extension)",
      "Section 4.1's no-second-chance discussion");

  struct Shape {
    const char *Name;
    unsigned Phases;
    unsigned Loops;
    unsigned Trips;
  };
  const Shape Shapes[] = {
      {"2 phases x 30 loops", 2, 30, 200},
      {"3 phases x 40 loops", 3, 40, 200},
      {"5 phases x 24 loops", 5, 24, 300},
  };

  TablePrinter Table({"program", "flush", "flushes", "xlations",
                      "live frags", "live KB", "xlated %", "checksum"});
  for (const Shape &S : Shapes) {
    for (bool FlushOn : {false, true}) {
      FlushRow Row = runConfig(S.Phases, S.Loops, S.Trips, FlushOn);
      Table.beginRow();
      Table.cell(S.Name);
      Table.cell(FlushOn ? "on" : "off");
      Table.cellInt(int64_t(Row.Flushes));
      Table.cellInt(int64_t(Row.Translations));
      Table.cellInt(int64_t(Row.LiveFragments));
      Table.cellFloat(double(Row.LiveBytes) / 1024.0, 1);
      Table.cellFloat(Row.TranslatedPct, 1);
      Table.cell(Row.ChecksumOk ? "ok" : "MISMATCH");
    }
  }
  Table.print();

  std::printf(
      "\nexpected: flushing keeps the live cache near one phase's working\n"
      "set (the no-flush footprint grows with every phase). Because these\n"
      "phases are fully disjoint, flushed fragments are never needed\n"
      "again and the translation count does not rise; a program that\n"
      "revisits old phases would pay retranslations instead. The paper's\n"
      "VM is the 'off' row.\n");
  return 0;
}
