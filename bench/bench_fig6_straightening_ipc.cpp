//===- bench/bench_fig6_straightening_ipc.cpp - Figure 6 ------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6: the performance impact of code straightening and the
/// dual-address hardware RAS on the reference superscalar:
///   original (no RAS)     — native Alpha, returns predicted by the BTB,
///   original (RAS)        — native Alpha with the conventional RAS,
///   straightened (no RAS) — sw_pred.no_ras chaining,
///   straightened (RAS)    — sw_pred.ras chaining (the paper's baseline).
///
/// Paper shape: straightening without return support loses to the
/// original; with the dual-address RAS it is about on par.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Figure 6: code straightening and H/W RAS impact (V-ISA IPC)",
              "Figure 6 (Section 4.3)");
  TablePrinter T({"workload", "orig.no_ras", "orig.ras", "straight.no_ras",
                  "straight.ras"});
  std::vector<double> Col[4];

  for (const std::string &W : workloads::workloadNames()) {
    double Row[4];
    Row[0] = runOriginal(W, /*ConventionalRas=*/false).vIpc();
    Row[1] = runOriginal(W, /*ConventionalRas=*/true).vIpc();
    dbt::DbtConfig Dbt;
    Dbt.Variant = iisa::IsaVariant::Straight;
    Dbt.Chaining = dbt::ChainPolicy::SwPredNoRas;
    Row[2] = runOnSuperscalar(W, Dbt).vIpc();
    Dbt.Chaining = dbt::ChainPolicy::SwPredRas;
    Row[3] = runOnSuperscalar(W, Dbt).vIpc();

    T.beginRow();
    T.cell(W);
    for (unsigned I = 0; I != 4; ++I) {
      T.cellFloat(Row[I], 3);
      Col[I].push_back(Row[I]);
    }
  }
  T.beginRow();
  T.cell("harmonic mean");
  for (unsigned I = 0; I != 4; ++I)
    T.cellFloat(harmonicMean(Col[I]), 3);
  T.print();
  std::printf("\npaper shape: straightened-without-RAS < original-with-RAS "
              "~= straightened-with-\ndual-RAS (the co-designed hardware "
              "feature recovers the losses).\n");
  return 0;
}
