//===- bench/bench_ablation_cmov.cpp - Conditional-move decomposition -----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the conditional-move decomposition in the modified ISA: the
/// paper's two-instruction split (cmov_mask + cmov_blend through the
/// readable destination-GPR field) versus the generic four-operation
/// mask/and/bic/bis expansion the basic ISA is forced into. Measured on
/// the cmov-heavy workloads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Ablation: conditional-move decomposition (modified ISA, ILDP)",
              "Section 3.3's decomposed-instruction discussion");
  TablePrinter T({"workload", "rel.insts 2-op", "rel.insts 4-op",
                  "ipc 2-op", "ipc 4-op"});
  uarch::IldpParams Params;
  std::vector<double> Ipc2, Ipc4;

  // The cmov-carrying workloads (mcf, vpr, twolf, eon) plus one without
  // (gzip) as a control.
  for (const char *W : {"mcf", "vpr", "twolf", "eon", "gzip"}) {
    double Rel[2], Ipc[2];
    for (int FourOp = 0; FourOp != 2; ++FourOp) {
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Modified;
      Dbt.CmovTwoOp = FourOp == 0;
      RunOutput Out = runOnIldp(W, Dbt, Params);
      const StatisticSet &S = Out.Vm;
      uint64_t Executed = S.get("frag.insts") + S.get("dispatch.insts") +
                          S.get("stub.insts");
      uint64_t VInsts = S.get("vm.vinsts_translated");
      Rel[FourOp] = VInsts ? double(Executed) / double(VInsts) : 0;
      Ipc[FourOp] = Out.vIpc();
    }
    T.beginRow();
    T.cell(W);
    T.cellFloat(Rel[0], 3);
    T.cellFloat(Rel[1], 3);
    T.cellFloat(Ipc[0], 3);
    T.cellFloat(Ipc[1], 3);
    Ipc2.push_back(Ipc[0]);
    Ipc4.push_back(Ipc[1]);
  }
  T.beginRow();
  T.cell("harmonic mean");
  T.cell("");
  T.cell("");
  T.cellFloat(harmonicMean(Ipc2), 3);
  T.cellFloat(harmonicMean(Ipc4), 3);
  T.print();
  std::printf("\nexpected: the two-op split removes two instructions per "
              "conditional move\n(and the mask's scratch-GPR round trip), "
              "helping exactly the cmov-dense\nworkloads; gzip (no cmovs) "
              "is unchanged.\n");
  return 0;
}
