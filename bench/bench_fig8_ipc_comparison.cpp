//===- bench/bench_fig8_ipc_comparison.cpp - Figure 8 ---------------------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8: V-ISA IPC of
///   1. the original program on the out-of-order superscalar (with RAS),
///   2. the straightened program on the same superscalar (sw_pred.ras),
///   3. the basic accumulator ISA on the ILDP machine,
///   4. the modified accumulator ISA on the ILDP machine,
/// plus the native I-ISA IPC of the modified configuration (the paper's
/// fifth bar). ILDP: 8 PEs, 32KB replicated D-cache, 0-cycle global
/// communication — isolating I-ISA effects from machine resources.
///
/// Paper shape: modified ~= straightened - 15%; basic < modified; native
/// I-ISA IPC well above the V-ISA IPC (instruction expansion).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Figure 8: V-ISA IPC comparison", "Figure 8 (Section 4.5)");
  TablePrinter T({"workload", "orig.super", "straight.super", "basic.ildp",
                  "mod.ildp", "mod native I-IPC"});
  std::vector<double> Col[5];

  uarch::IldpParams Ildp;
  Ildp.NumPEs = 8;
  Ildp.CommLatency = 0;

  for (const std::string &W : workloads::workloadNames()) {
    double Row[5];
    Row[0] = runOriginal(W, /*ConventionalRas=*/true).vIpc();

    dbt::DbtConfig Straight;
    Straight.Variant = iisa::IsaVariant::Straight;
    Row[1] = runOnSuperscalar(W, Straight).vIpc();

    dbt::DbtConfig Basic;
    Basic.Variant = iisa::IsaVariant::Basic;
    Row[2] = runOnIldp(W, Basic, Ildp).vIpc();

    dbt::DbtConfig Modified;
    Modified.Variant = iisa::IsaVariant::Modified;
    RunOutput Mod = runOnIldp(W, Modified, Ildp);
    Row[3] = Mod.vIpc();
    Row[4] = Mod.nativeIpc();

    T.beginRow();
    T.cell(W);
    for (unsigned I = 0; I != 5; ++I) {
      T.cellFloat(Row[I], 3);
      Col[I].push_back(Row[I]);
    }
  }
  T.beginRow();
  T.cell("harmonic mean");
  for (unsigned I = 0; I != 5; ++I)
    T.cellFloat(harmonicMean(Col[I]), 3);
  T.print();
  std::printf("\npaper shape: modified-ISA-on-ILDP within ~15%% of the "
              "straightened superscalar;\nbasic ISA below modified; native "
              "I-ISA IPC clearly above V-ISA IPC.\n");
  return 0;
}
