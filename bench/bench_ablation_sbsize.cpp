//===- bench/bench_ablation_sbsize.cpp - Superblock-size ablation ---------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.1: "we also experimented with superblock size of 50 and found
/// it is not large enough to provide performance benefits from code
/// straightening." This ablation sweeps the maximum superblock size for
/// the straightening backend on the superscalar and reports fragment
/// counts, exits, and IPC.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

int main() {
  printBanner("Ablation: maximum superblock size (straightening backend)",
              "Section 4.1 discussion");
  const unsigned Sizes[] = {25, 50, 100, 200};
  std::vector<std::string> Headers = {"workload"};
  for (unsigned Size : Sizes)
    Headers.push_back("ipc@" + std::to_string(Size));
  Headers.push_back("frags@200");
  TablePrinter T(Headers);

  std::vector<double> Col[std::size(Sizes)];
  for (const std::string &W : workloads::workloadNames()) {
    T.beginRow();
    T.cell(W);
    uint64_t Frags200 = 0;
    for (unsigned I = 0; I != std::size(Sizes); ++I) {
      dbt::DbtConfig Dbt;
      Dbt.Variant = iisa::IsaVariant::Straight;
      Dbt.MaxSuperblockInsts = Sizes[I];
      RunOutput Out = runOnSuperscalar(W, Dbt);
      double Ipc = Out.vIpc();
      T.cellFloat(Ipc, 3);
      Col[I].push_back(Ipc);
      if (Sizes[I] == 200)
        Frags200 = Out.Vm.get("tcache.fragments");
    }
    T.cellInt(int64_t(Frags200));
  }
  T.beginRow();
  T.cell("harmonic mean");
  for (unsigned I = 0; I != std::size(Sizes); ++I)
    T.cellFloat(harmonicMean(Col[I]), 3);
  T.cell("");
  T.print();
  std::printf("\nexpected: small superblocks fragment the hot paths (more "
              "exits and chain\ntransfers), losing the straightening "
              "benefit the paper reports for size 200.\n");
  return 0;
}
