//===- bench/bench_table2_translation_stats.cpp - Table 2 reproduction ----===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: translated instruction statistics. For every workload and both
/// accumulator ISAs (B = basic, M = modified):
///   - relative number of dynamic instructions (translated, including
///     chaining and dispatch code, over V-ISA instructions),
///   - percentage of copy instructions,
///   - relative static instruction bytes (fragment bytes over 4 bytes per
///     distinct covered source instruction),
///   - translator instructions per translated source instruction
///     (Section 4.2's overhead measurement).
///
/// Paper averages for reference: B 1.60 / M 1.36 dynamic, B 17.7% /
/// M 3.1% copies, B 1.17 / M 1.07 static bytes, ~1,125 translation cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct VariantStats {
  double RelDynamic = 0;
  double CopyPct = 0;
  double RelStatic = 0;
  double TransCost = 0;
};

VariantStats measure(const std::string &Workload, iisa::IsaVariant Variant) {
  dbt::DbtConfig Dbt;
  Dbt.Variant = Variant;
  RunOutput Out = runFunctional(Workload, Dbt);
  const StatisticSet &S = Out.Vm;

  VariantStats V;
  uint64_t Executed = S.get("frag.insts") + S.get("dispatch.insts") +
                      S.get("stub.insts");
  uint64_t VInsts = S.get("vm.vinsts_translated");
  V.RelDynamic = VInsts ? double(Executed) / double(VInsts) : 0;
  V.CopyPct = Executed ? 100.0 * double(S.get("frag.copy_insts")) /
                             double(Executed)
                       : 0;
  uint64_t UniqueSrc = S.get("tcache.unique_source_insts");
  V.RelStatic = UniqueSrc ? double(S.get("tcache.body_bytes")) /
                                double(4 * UniqueSrc)
                          : 0;
  uint64_t SrcTranslated = S.get("dbt.source_insts");
  V.TransCost = SrcTranslated
                    ? double(S.get("dbt.cost.total")) / double(SrcTranslated)
                    : 0;
  return V;
}

} // namespace

int main() {
  printBanner("Table 2: translated instruction statistics",
              "Table 2 and Section 4.2");
  TablePrinter T({"workload", "dyn B", "dyn M", "copy% B", "copy% M",
                  "static B", "static M", "xlate cost"});
  double SumDynB = 0, SumDynM = 0, SumCopyB = 0, SumCopyM = 0;
  double SumStatB = 0, SumStatM = 0, SumCost = 0;
  unsigned N = 0;

  for (const std::string &W : workloads::workloadNames()) {
    VariantStats B = measure(W, iisa::IsaVariant::Basic);
    VariantStats M = measure(W, iisa::IsaVariant::Modified);
    T.beginRow();
    T.cell(W);
    T.cellFloat(B.RelDynamic, 2);
    T.cellFloat(M.RelDynamic, 2);
    T.cellFloat(B.CopyPct, 1);
    T.cellFloat(M.CopyPct, 1);
    T.cellFloat(B.RelStatic, 2);
    T.cellFloat(M.RelStatic, 2);
    T.cellFloat(B.TransCost, 1);
    SumDynB += B.RelDynamic;
    SumDynM += M.RelDynamic;
    SumCopyB += B.CopyPct;
    SumCopyM += M.CopyPct;
    SumStatB += B.RelStatic;
    SumStatM += M.RelStatic;
    SumCost += B.TransCost;
    ++N;
  }
  T.beginRow();
  T.cell("average");
  T.cellFloat(SumDynB / N, 2);
  T.cellFloat(SumDynM / N, 2);
  T.cellFloat(SumCopyB / N, 1);
  T.cellFloat(SumCopyM / N, 1);
  T.cellFloat(SumStatB / N, 2);
  T.cellFloat(SumStatM / N, 2);
  T.cellFloat(SumCost / N, 1);
  T.print();
  std::printf("\npaper avg: dyn B 1.60 / M 1.36; copy%% B 17.7 / M 3.1; "
              "static B 1.17 / M 1.07;\nxlate cost ~1125 Alpha insts per "
              "translated inst.\n");
  return 0;
}
