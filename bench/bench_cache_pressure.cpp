//===- bench/bench_cache_pressure.cpp - Bounded-cache pressure bench ------===//
//
// Part of the ILDP-DBT project (CGO 2003 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prices the bounded translation cache (DESIGN.md §10) with a budget
/// sweep per workload: unbounded, then half, then an eighth of the
/// natural code footprint the unbounded run established. The unbounded
/// configuration (CodeCacheBytes = 0) must be bit-identical to a plain
/// VM — same checksum, fragments, translator units, guest instructions —
/// because none of the eviction machinery may run without a budget. The
/// pressured configurations must stay architecturally identical while
/// the cache.* statistics show the eviction/unchain/re-translation churn
/// and the budget high-water mark proves the bound held after every
/// install.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

using namespace ildp;
using namespace ildp::bench;

namespace {

struct Sample {
  uint64_t Checksum = 0;
  uint64_t Fragments = 0;
  uint64_t TotalUnits = 0; ///< dbt.cost.total: translator work in units.
  uint64_t GuestInsts = 0;
  uint64_t BodyBytes = 0;
  uint64_t Evictions = 0;
  uint64_t EvictedBytes = 0;
  uint64_t Unchained = 0;
  uint64_t Retranslations = 0;
  uint64_t DegradedFlushes = 0;
  uint64_t HighWater = 0;
  double WallMs = 0;
};

Sample runOnce(const std::string &Workload, uint64_t BudgetBytes) {
  GuestMemory Mem;
  workloads::WorkloadImage Image =
      workloads::buildWorkload(Workload, Mem, benchScale());
  vm::VmConfig Config;
  Config.CodeCacheBytes = BudgetBytes;

  auto Start = std::chrono::steady_clock::now();
  vm::VirtualMachine Vm(Mem, Image.EntryPc, Config);
  vm::RunResult Result = Vm.run();
  auto End = std::chrono::steady_clock::now();
  if (Result.Reason != vm::StopReason::Halted) {
    std::fprintf(stderr, "%s: run did not halt cleanly\n", Workload.c_str());
    std::exit(1);
  }

  Sample S;
  const StatisticSet &Stats = Vm.stats();
  S.Checksum = Vm.interpreter().state().readGpr(alpha::RegV0);
  S.Fragments = Stats.get("tcache.fragments");
  S.TotalUnits = Stats.get("dbt.cost.total");
  S.GuestInsts = Stats.get("vm.guest_insts");
  S.BodyBytes = Stats.get("tcache.body_bytes");
  S.Evictions = Stats.get("cache.evictions");
  S.EvictedBytes = Stats.get("cache.evicted_bytes");
  S.Unchained = Stats.get("cache.unchained_exits");
  S.Retranslations = Stats.get("cache.retranslations");
  S.DegradedFlushes = Stats.get("cache.degraded_flushes");
  S.HighWater = Stats.get("cache.budget_high_water");
  S.WallMs = std::chrono::duration<double, std::milli>(End - Start).count();
  return S;
}

} // namespace

int main() {
  printBanner("Bounded translation cache",
              "budget sweep: unbounded vs 1/2 and 1/8 of the natural "
              "code footprint (DESIGN.md §10)");

  std::vector<std::string> Names = workloads::workloadNames();

  // -------------------------------------------------------------------
  // Part 1: an unreachable budget must be free. A plain VM
  // (CodeCacheBytes = 0, machinery disabled) and a VM with the eviction
  // machinery armed but a budget no run can touch go back to back;
  // every deterministic observable must match and no eviction counter
  // may move.
  // -------------------------------------------------------------------
  bool UnboundedIdentical = true;
  std::vector<Sample> Baseline(Names.size());
  for (size_t I = 0; I != Names.size(); ++I) {
    Sample Plain = runOnce(Names[I], 0);
    Sample Huge = runOnce(Names[I], 1ull << 40);
    UnboundedIdentical &= Huge.Checksum == Plain.Checksum &&
                          Huge.Fragments == Plain.Fragments &&
                          Huge.TotalUnits == Plain.TotalUnits &&
                          Huge.GuestInsts == Plain.GuestInsts &&
                          Huge.Evictions == 0 && Plain.Evictions == 0 &&
                          Plain.DegradedFlushes == 0;
    Baseline[I] = Plain;
  }

  // -------------------------------------------------------------------
  // Part 2: the pressure sweep. Budgets derive from each workload's own
  // unbounded footprint so the pressure is comparable across workloads.
  // -------------------------------------------------------------------
  TablePrinter T({"workload", "budget", "evict", "evict KB", "unchain",
                  "retrans", "degr", "high water", "ms", "slowdown %"});
  bool AllIdentical = true;
  bool BudgetHeld = true;
  uint64_t TotalEvictions = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const Sample &Base = Baseline[I];
    for (unsigned Div : {1u, 2u, 8u}) {
      uint64_t Budget =
          Div == 1 ? 0 : std::max<uint64_t>(Base.BodyBytes / Div, 64);
      Sample S = Div == 1 ? Base : runOnce(Names[I], Budget);
      // Gate on the architected result. vm.guest_insts is deliberately
      // not compared here: residency changes move the boundary between
      // translated and interpreted execution, and an instruction that
      // traps out of a fragment is re-counted by the interpreter.
      bool Identical = S.Checksum == Base.Checksum;
      AllIdentical &= Identical;
      if (Budget != 0) {
        BudgetHeld &= S.HighWater <= Budget;
        TotalEvictions += S.Evictions;
      }

      T.beginRow();
      T.cell(Identical ? (Div == 1 ? Names[I] : "  /" + std::to_string(Div))
                       : Names[I] + " (DIVERGED!)");
      T.cell(Budget == 0 ? std::string("unbounded")
                         : std::to_string(Budget) + " B");
      T.cellInt(int64_t(S.Evictions));
      T.cellFloat(double(S.EvictedBytes) / 1024.0, 1);
      T.cellInt(int64_t(S.Unchained));
      T.cellInt(int64_t(S.Retranslations));
      T.cellInt(int64_t(S.DegradedFlushes));
      T.cellInt(int64_t(S.HighWater));
      T.cellFloat(S.WallMs, 2);
      T.cellFloat(100.0 * (S.WallMs - Base.WallMs) / Base.WallMs, 1);
    }
  }
  T.print();

  if (!UnboundedIdentical || !AllIdentical || !BudgetHeld) {
    std::printf("\nCACHE-PRESSURE CHECK FAILED%s%s%s\n",
                UnboundedIdentical ? "" : " (unbounded run not bit-identical)",
                AllIdentical ? "" : " (architected divergence under budget)",
                BudgetHeld ? "" : " (budget high-water exceeded a budget)");
    return 1;
  }
  std::printf("\ncache-pressure check OK: unbounded bit-identical, "
              "architected results identical across the sweep, budgets "
              "held after every install (%llu evictions total)\n",
              (unsigned long long)TotalEvictions);
  return 0;
}
